// Ablation — LU's memory-level-parallelism overlap.
//
// DESIGN.md §5 grants LU one per-benchmark escape hatch: 78% of its
// micro-ops issue in the shadow of outstanding misses, making it more
// frequency-insensitive than its Table-1 UPM (73.5) implies.  This is
// justified by the paper's own data (LU's slope is out of UPM order, and
// Figure 2's quoted LU numbers demand it), but it is a modeling choice —
// so ablate it: rerun the Table-1 and Figure-2 analyses with the overlap
// removed and show exactly which claims it carries.
#include <iostream>

#include "cluster/experiment.hpp"
#include "harness.hpp"
#include "model/tradeoff.hpp"
#include "util/table.hpp"
#include "workloads/nas.hpp"
#include "workloads/patterns.hpp"

using namespace gearsim;

namespace {

/// LU with a configurable MLP overlap; identical communication structure
/// (rebuilt from the public pattern library and NasLu's own parameters).
class LuVariant final : public workloads::NasSkeleton {
 public:
  explicit LuVariant(double overlap)
      : NasSkeleton([overlap] {
          workloads::NasParams p = workloads::NasLu().params();
          p.overlap = overlap;
          return p;
        }()) {}

  void run(cluster::RankContext& ctx) const override {
    const cpu::ComputeBlock block = iteration_block(ctx);
    const Bytes sweep = workloads::NasLu().sweep_bytes;
    for (int it = 0; it < params_.iterations; ++it) {
      ctx.compute(block);
      workloads::wavefront_exchange(ctx, sweep);
    }
    if (ctx.nprocs() > 1) ctx.comm().allreduce(40);
  }
};

int run(bench::BenchContext& ctx) {
  cluster::ExperimentRunner runner(cluster::athlon_cluster());

  std::cout << "=== Ablation: LU's MLP overlap (0.78 vs 0) ===\n\n";

  TextTable single({"variant", "gear 2 delay", "gear 4 delay",
                    "gear 4 energy", "slope 1->2 [kJ/s]", "LU 4->8 case"});
  bool shipped_case3 = false;
  bool stripped_case1 = false;
  for (const double overlap : {0.78, 0.0}) {
    const LuVariant lu(overlap);
    const model::Curve c1 = model::curve_from_runs(runner.gear_sweep(lu, 1));
    const auto rel = model::relative_to_fastest(c1);
    const model::Curve c4 = model::curve_from_runs(runner.gear_sweep(lu, 4));
    const model::Curve c8 = model::curve_from_runs(runner.gear_sweep(lu, 8));
    const model::SpeedupCase transition = model::classify_transition(c4, c8);
    if (overlap > 0.0 && transition == model::SpeedupCase::kGoodSpeedup) {
      shipped_case3 = true;
    }
    if (overlap == 0.0 && transition == model::SpeedupCase::kPoorSpeedup) {
      stripped_case1 = true;
    }
    single.add_row(
        {overlap > 0.0 ? "overlap 0.78 (shipped)" : "overlap 0 (pure UPM)",
         fmt_percent(rel[1].time_delta), fmt_percent(rel[3].time_delta),
         fmt_percent(rel[3].energy_delta),
         fmt_fixed(model::slope_between(c1.points[0], c1.points[1]) / 1e3, 3),
         model::to_string(transition)});
  }
  std::cout << single.to_string() << '\n';

  std::cout
      << "Without the overlap, LU's single-node curve flattens (its gear-4"
         " energy\nsavings evaporate) and its Figure-2 case-3 showing"
         " reverts to case 1 —\nthe overlap is load-bearing for exactly the"
         " claims EXPERIMENTS.md\nattributes to it, and for nothing else"
         " (the other five benchmarks never\nuse it): "
      << (shipped_case3 && stripped_case1 ? "confirmed" : "NOT confirmed")
      << ".\n";
  ctx.metric("shipped_case3", shipped_case3 ? 1.0 : 0.0);
  ctx.metric("stripped_case1", stripped_case1 ? 1.0 : 0.0);
  return (shipped_case3 && stripped_case1) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "ablation_mlp_overlap", run);
}
