// Microbenchmark for the rebuilt event kernel: queue throughput across a
// depth sweep (1e3..1e7), allocations per event through an instrumented
// global allocator, and the EventFn capture-pool path counts.
//
// Wall-clock throughput goes into the `wall` section (machine-dependent,
// never gated).  The gated deterministic metrics are the properties the
// kernel rewrite exists to guarantee:
//   * engine.allocs_per_event_steady — heap allocations per push/pop pair
//     during steady-state churn; the pooled queue + small-buffer EventFn
//     make this exactly 0, and any regression (a capture outgrowing the
//     inline buffer, the pool losing its free list) bumps it.
//   * engine.pool.inline_events / engine.pool.fallback_allocs — exact
//     capture-path counts for a fixed scenario.
//   * jacobi8.pool_fallback_allocs — fallback allocations across a real
//     8-node Jacobi experiment, read from the obs registry; proves the
//     inline buffer covers every capture the library's own layers create.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "cluster/experiment.hpp"
#include "harness.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/parallel_engine.hpp"
#include "workloads/jacobi.hpp"

// --- instrumented global allocator -----------------------------------------
// Counts every operator-new so the bench can assert allocs/event == 0 in
// steady state.  Relaxed atomics: the bench is single-threaded where it
// matters, and the counter is read only between phases.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

using namespace gearsim;

namespace {

template <typename T>
inline void keep(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

/// Steady-state churn at a fixed depth: pop the earliest event, push a
/// replacement one second later.  Returns events processed (== ops).
std::uint64_t churn(sim::EventQueue& q, int ops) {
  for (int i = 0; i < ops; ++i) {
    sim::EventQueue::Popped p = q.pop();
    keep(p.seq);
    q.push(p.time + seconds(1.0), [] {});
  }
  return static_cast<std::uint64_t>(ops);
}

int run(bench::BenchContext& ctx) {
  // --- throughput sweep: depth 1e3 .. 1e7 --------------------------------
  for (const int depth : {1'000, 10'000, 100'000, 1'000'000, 10'000'000}) {
    sim::EventQueue q;
    for (int i = 0; i < depth; ++i) {
      q.push(seconds(((i * 7919LL) % depth) * 1e-3), [] {});
    }
    // Deep queues churn fewer ops so the sweep stays fast end to end.
    const int ops = depth <= 100'000 ? 2'000'000 : 500'000;
    churn(q, ops / 10);  // Warm the pool and the cache.
    const double secs = bench::time_op([&] { churn(q, ops); });
    const double events_per_sec = ops / secs;
    const std::string name = "queue_churn_depth_" + std::to_string(depth);
    ctx.wall_metric(name + ".events_per_sec", events_per_sec);
    ctx.wall_metric(name + ".ns_per_event", secs / ops * 1e9);
    std::cout << name << ": " << events_per_sec << " events/sec\n";
  }

  // --- allocations per event, steady state -------------------------------
  // At constant depth with warmed vectors, a push/pop pair must touch the
  // allocator zero times: keys move inside a pre-grown vector, captures
  // live inline in pooled slots.  Deterministic, so the gate pins it.
  {
    sim::EventQueue q;
    const int depth = 100'000;
    for (int i = 0; i < depth; ++i) {
      q.push(seconds(((i * 7919LL) % depth) * 1e-3), [] {});
    }
    churn(q, 200'000);  // Warm-up: grow pool/heap/free-list to capacity.
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    const std::uint64_t events = churn(q, 1'000'000);
    const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
    const double allocs_per_event =
        static_cast<double>(after - before) / static_cast<double>(events);
    ctx.metric("engine.allocs_per_event_steady", allocs_per_event);
    std::cout << "steady-state allocs/event: " << allocs_per_event << "\n";
  }

  // --- capture-pool paths: fixed scenario --------------------------------
  // 1000 small captures dispatch inline; 10 oversized captures take the
  // heap fallback.  Exact counts, gated.
  {
    sim::Engine engine;
    struct Oversized {
      double payload[12] = {};  // 96 bytes > EventFn::kInlineCapacity.
    };
    for (int i = 0; i < 1000; ++i) {
      engine.schedule_at(seconds(i), [] {});
    }
    for (int i = 0; i < 10; ++i) {
      Oversized big;
      big.payload[0] = i;
      engine.schedule_at(seconds(2000 + i), [big] { keep(big.payload[0]); });
    }
    engine.run();
    ctx.metric("engine.pool.inline_events",
               static_cast<double>(engine.pool_inline_events()));
    ctx.metric("engine.pool.fallback_allocs",
               static_cast<double>(engine.pool_fallback_allocs()));
  }

  // --- threaded window throughput: 1000 simulated nodes -------------------
  // The conservative parallel engine (sim::ParallelEngine, 4 partitions)
  // against the same 1000-actor population on one partition.  Wall-clock
  // throughput and speedup land in the wall section (machine-dependent,
  // never gated; a single-core runner reports speedup <= 1).  The gated
  // metrics are the determinism contract: both variants must execute the
  // identical event population — equal totals and equal order-independent
  // set hashes — and the parallel window count is an exact function of
  // the scenario.
  {
    struct Node {
      sim::ParallelEngine* group = nullptr;
      sim::Engine* eng = nullptr;
      std::size_t partition = 0;
      int index = 0;
      Seconds step{};
      Seconds lookahead{};
      Seconds end{};
      void fire(Seconds now) {
        if (index % 16 == 0) {
          // Cross-partition traffic at exactly the conservative bound.
          const std::size_t to = (partition + 1) % group->partitions();
          group->post(*eng, to, now + lookahead, [] {});
        }
        const Seconds next = now + step;
        if (next < end) eng->schedule_at(next, [this, next] { fire(next); });
      }
    };
    struct ActorStats {
      std::uint64_t events = 0;
      std::uint64_t set_hash = 0;
      std::uint64_t windows = 0;
    };
    const auto run_actors = [](std::size_t partitions, int threads) {
      constexpr int kNodes = 1000;
      const Seconds lookahead = microseconds(80.0);
      const Seconds step = microseconds(25.0);
      const Seconds end = milliseconds(10.0);  // 400 steps per actor.
      sim::ParallelEngine group(partitions, lookahead, threads);
      std::vector<Node> actors(kNodes);
      for (int a = 0; a < kNodes; ++a) {
        const std::size_t p = static_cast<std::size_t>(a) * partitions /
                              static_cast<std::size_t>(kNodes);
        Node& node = actors[static_cast<std::size_t>(a)];
        node = Node{&group, &group.partition(p), p, a,
                    step,   lookahead,           end};
        const Seconds start = microseconds(static_cast<double>(a % 16));
        group.partition(p).schedule_at(start,
                                       [&node, start] { node.fire(start); });
      }
      group.run();
      return ActorStats{group.events_executed(), group.event_set_hash(),
                        group.windows()};
    };
    const ActorStats serial = run_actors(1, 1);
    const ActorStats parallel = run_actors(4, 4);
    const double serial_secs = bench::time_op([&] { run_actors(1, 1); });
    const double parallel_secs = bench::time_op([&] { run_actors(4, 4); });
    const auto events = static_cast<double>(parallel.events);
    ctx.wall_metric("engine.window.serial_events_per_sec",
                    events / serial_secs);
    ctx.wall_metric("engine.window.parallel_events_per_sec",
                    events / parallel_secs);
    ctx.wall_metric("engine.window.speedup", serial_secs / parallel_secs);
    ctx.metric("engine.window.events_total", events);
    ctx.metric("engine.window.set_hash_matches_serial",
               parallel.set_hash == serial.set_hash ? 1.0 : 0.0);
    ctx.metric("engine.window.parallel_windows",
               static_cast<double>(parallel.windows));
    std::cout << "window throughput: serial " << events / serial_secs
              << " events/sec, parallel(4) " << events / parallel_secs
              << " events/sec\n";
  }

  // --- fallback allocations across a real experiment ---------------------
  // The kernel rewrite sized the inline buffer for every capture the
  // library creates; an 8-node Jacobi run must therefore report zero
  // fallbacks through the observability counters.
  {
    const cluster::ExperimentRunner runner(cluster::athlon_cluster());
    const workloads::Jacobi jacobi;
    obs::MetricsRegistry registry;
    cluster::RunOptions options;
    options.metrics = &registry;
    // The gated order hash is a serial-engine fingerprint; pin the mode
    // against any ambient GEARSIM_ENGINE_THREADS (attached metrics force
    // the serial path anyway — this makes the pin explicit).
    options.engine_threads = 1;
    const cluster::RunResult r = runner.run(jacobi, 8, options);
    keep(r.wall);
    ctx.metric("jacobi8.pool_fallback_allocs",
               static_cast<double>(
                   registry.counter("sim.engine.pool.fallback_allocs").value()));
    ctx.metric("jacobi8.pool_inline_events",
               static_cast<double>(
                   registry.counter("sim.engine.pool.inline_events").value()));
    ctx.metric("jacobi8.event_order_hash_low32",
               static_cast<double>(r.event_order_hash & 0xffffffffULL));
  }

  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "microbench_engine", run);
}
