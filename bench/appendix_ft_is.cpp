// Appendix — FT and IS: reproducing the paper's *exclusions*.
//
// Section 3.1: "The NAS FT benchmark is not shown because we cannot get
// it to work, and IS is not shown because (1) class B is too small to get
// any parallel speedup and (2) class C thrashes on 1 and 2 nodes, making
// comparative energy results meaningless."
//
// This harness runs both codes on the simulated cluster and checks that
// the stated pathologies hold here too:
//   * IS class B: communication swamps its tiny compute — no speedup;
//   * IS class C: the per-node working set exceeds 1 GB below 4 nodes, so
//     1- and 2-node runs page and their energy is not comparable;
//   * FT (which our substrate *can* run): ordinary energy-time curves,
//     shown for completeness.
#include <iostream>

#include "cluster/experiment.hpp"
#include "harness.hpp"
#include "model/tradeoff.hpp"
#include "util/table.hpp"
#include "workloads/nas_extra.hpp"

using namespace gearsim;

namespace {

int run(bench::BenchContext& ctx) {
  cluster::ExperimentRunner runner(cluster::athlon_cluster());

  std::cout << "=== Appendix: the excluded benchmarks (FT, IS) ===\n\n";

  bool pathologies_hold = true;

  // --- IS class B: no parallel speedup --------------------------------------
  {
    const workloads::NasIs is_b;
    TextTable t({"nodes", "time [s]", "speedup"});
    const Seconds t1 = runner.run(is_b, 1, 0).wall;
    double best_speedup = 0.0;
    for (int n : {1, 2, 4, 8}) {
      const Seconds tn = runner.run(is_b, n, 0).wall;
      const double s = t1 / tn;
      best_speedup = std::max(best_speedup, s);
      t.add_row({std::to_string(n), fmt_fixed(tn.value(), 2),
                 fmt_fixed(s, 2)});
    }
    std::cout << "--- IS class B (paper: too small for any speedup) ---\n"
              << t.to_string() << "best speedup: "
              << fmt_fixed(best_speedup, 2)
              << (best_speedup < 1.4 ? "  -> exclusion justified\n\n"
                                     : "  -> UNEXPECTED speedup\n\n");
    if (best_speedup >= 1.4) pathologies_hold = false;
    ctx.metric("is_b.best_speedup", best_speedup);
  }

  // --- IS class C: thrashing below 4 nodes -----------------------------------
  {
    workloads::NasIs::Params p;
    p.cls = workloads::NasIs::Class::kC;
    const workloads::NasIs is_c(p);
    TextTable t({"nodes", "fits in 1GB", "time [s]", "mean power [W]",
                 "energy/node [kJ]"});
    Seconds t4{};
    Seconds t1{};
    for (int n : {1, 2, 4, 8}) {
      const cluster::RunResult r = runner.run(is_c, n, 0);
      if (n == 1) t1 = r.wall;
      if (n == 4) t4 = r.wall;
      t.add_row({std::to_string(n), is_c.fits_in_memory(n) ? "yes" : "NO",
                 fmt_fixed(r.wall.value(), 1),
                 fmt_fixed((r.energy / r.wall).value() /
                               static_cast<double>(n),
                           0),
                 fmt_fixed(r.energy.value() / 1e3 / n, 1)});
    }
    const double cliff = (t1 / t4);
    std::cout << "--- IS class C (paper: thrashes on 1 and 2 nodes) ---\n"
              << t.to_string() << "1-node vs 4-node slowdown factor: "
              << fmt_fixed(cliff, 1)
              << "x (superlinear cliff from paging: comparative energy"
                 " results below 4 nodes are meaningless)\n\n";
    if (cliff < 6.0) pathologies_hold = false;
    ctx.metric("is_c.thrash_slowdown", cliff);
  }

  // --- FT: runnable here ------------------------------------------------------
  {
    const workloads::NasFt ft;
    TextTable t({"nodes", "gear", "time [s]", "energy [kJ]"});
    for (int n : {2, 4, 8}) {
      const auto runs = runner.gear_sweep(ft, n);
      bool first = true;
      for (const auto& p : model::curve_from_runs(runs).points) {
        t.add_row({first ? std::to_string(n) : "",
                   std::to_string(p.gear_label),
                   fmt_fixed(p.time.value(), 1),
                   fmt_fixed(p.energy.value() / 1e3, 1)});
        first = false;
      }
      t.add_rule();
    }
    std::cout << "--- FT (the paper could not run it; our substrate can) ---\n"
              << t.to_string();
  }

  ctx.metric("pathologies_hold", pathologies_hold ? 1.0 : 0.0);
  return pathologies_hold ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "appendix_ft_is", run);
}
