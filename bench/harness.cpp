#include "harness.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>

#include "util/json.hpp"

namespace gearsim::bench {

void BenchContext::metric(std::string_view key, double value) {
  metrics_[std::string(key)] = value;
}

void BenchContext::wall_metric(std::string_view key, double value) {
  wall_metrics_[std::string(key)] = value;
}

void BenchContext::info(std::string_view key, std::string_view value) {
  info_[std::string(key)] = std::string(value);
}

std::string BenchContext::to_json(double wall_seconds) const {
  // Keep this dialect in lockstep with obs::compare_bench, which parses
  // it: schema gearsim-bench/1, flat name->number "metrics" map.
  std::string s = "{\"schema\":\"gearsim-bench/1\"";
  s += ",\"name\":" + json::jstr(name_);
  s += ",\"info\":{";
  bool first = true;
  for (const auto& [k, v] : info_) {
    if (!first) s += ',';
    first = false;
    s += json::jstr(k) + ":" + json::jstr(v);
  }
  s += "},\"metrics\":{";
  first = true;
  for (const auto& [k, v] : metrics_) {
    if (!first) s += ',';
    first = false;
    s += json::jstr(k) + ":" + json::jnum(v);
  }
  s += "},\"wall\":{\"seconds\":" + json::jnum(wall_seconds) +
       ",\"metrics\":{";
  first = true;
  for (const auto& [k, v] : wall_metrics_) {
    if (!first) s += ',';
    first = false;
    s += json::jstr(k) + ":" + json::jnum(v);
  }
  s += "}}}";
  return s;
}

int bench_main(int argc, char** argv, std::string_view name,
               const std::function<int(BenchContext&)>& body) {
  BenchContext ctx{std::string(name)};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--svg" && i + 1 < argc) {
      ctx.svg_dir_ = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      ctx.json_path_ = argv[++i];
    } else if (arg == "--wall-profile") {
      ctx.wall_profile_ = true;
    } else {
      std::cerr << ctx.name_ << ": ignoring unknown argument '" << arg
                << "'\n";
    }
  }

  int code = 0;
  const auto start = std::chrono::steady_clock::now();
  try {
    code = body(ctx);
  } catch (const std::exception& e) {
    std::cerr << ctx.name_ << ": " << e.what() << '\n';
    code = 1;
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  if (!ctx.json_path_.empty()) {
    std::filesystem::path path(ctx.json_path_);
    if (path.extension() != ".json") {
      path /= "BENCH_" + ctx.name_ + ".json";
    }
    if (path.has_parent_path()) {
      std::filesystem::create_directories(path.parent_path());
    }
    std::ofstream out(path, std::ios::trunc);
    out << ctx.to_json(wall_seconds) << '\n';
    if (!out.good()) {
      std::cerr << ctx.name_ << ": failed to write " << path << '\n';
      return 1;
    }
    std::cout << "wrote " << path.string() << '\n';
  }
  return code;
}

double time_op(const std::function<void()>& op, double min_seconds) {
  using clock = std::chrono::steady_clock;
  op();  // Warm caches and lazy state outside the measurement.
  double best = std::numeric_limits<double>::infinity();
  for (std::uint64_t batch = 1;;) {
    const auto start = clock::now();
    for (std::uint64_t i = 0; i < batch; ++i) op();
    const double elapsed =
        std::chrono::duration<double>(clock::now() - start).count();
    if (elapsed >= min_seconds) {
      best = std::min(best, elapsed / static_cast<double>(batch));
      return best;
    }
    // Too short to trust: grow toward a batch that spans min_seconds.
    if (elapsed > 0.0) {
      const double scale = (1.5 * min_seconds) / elapsed;
      batch = static_cast<std::uint64_t>(
          static_cast<double>(batch) * std::min(scale, 100.0)) + 1;
    } else {
      batch *= 10;
    }
  }
}

}  // namespace gearsim::bench
