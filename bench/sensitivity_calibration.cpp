// Sensitivity analysis — how robust are the reproduced claims to the
// calibration constants?
//
// The substrate has four load-bearing knobs that the paper does not pin
// down exactly: effective UPC, main-memory latency, the CPU's
// static/dynamic power split, and the non-CPU base power.  This harness
// perturbs each by +/-20% and re-checks the *structural* claims:
//
//   S1  slowdown bound 1 <= T_{i+1}/T_i <= f_i/f_{i+1}   (must always hold)
//   S2  fastest gear is fastest                           (must always hold)
//   S3  UPM/slope ordering concordance >= 0.8             (Table 1's claim)
//   S4  CG saves energy at gear 2; EP saves ~nothing      (Fig. 1's claim)
//   S5  LU 4->8 remains case 3                            (Fig. 2's claim)
//
// S1/S2 are structural consequences of the timing model and must survive
// any calibration; S3-S5 are calibration-sensitive, and this table shows
// how much slack they have.
#include <functional>
#include <iostream>

#include "cluster/experiment.hpp"
#include "harness.hpp"
#include "model/tradeoff.hpp"
#include "util/table.hpp"
#include "workloads/nas.hpp"
#include "workloads/registry.hpp"

using namespace gearsim;

namespace {

struct ClaimChecks {
  bool bound = true;
  bool fastest = true;
  bool concordance = true;
  bool cg_vs_ep = true;
  bool lu_case3 = true;
};

ClaimChecks check_claims(const cluster::ClusterConfig& config) {
  cluster::ExperimentRunner runner(config);
  ClaimChecks out;

  std::vector<model::TradeoffSummary> rows;
  for (const auto& entry : workloads::nas_suite()) {
    const auto workload = entry.make();
    const model::Curve curve =
        model::curve_from_runs(runner.gear_sweep(*workload, 1));
    for (std::size_t g = 1; g < curve.points.size(); ++g) {
      const double ratio = curve.points[g].time / curve.points[g - 1].time;
      const double cap =
          config.gears.gear(g - 1).frequency / config.gears.gear(g).frequency;
      if (ratio < 1.0 - 1e-9 || ratio > cap + 1e-9) out.bound = false;
      if (curve.points[g].time < curve.points[0].time) out.fastest = false;
    }
    const auto* nas = dynamic_cast<const workloads::NasSkeleton*>(workload.get());
    rows.push_back({entry.name, nas->params().upm,
                    model::slope_between(curve.points[0], curve.points[1]),
                    model::slope_between(curve.points[1], curve.points[2])});
  }
  out.concordance = model::upm_slope_concordance(rows) >= 0.8;

  const auto cg_rel = model::relative_to_fastest(model::curve_from_runs(
      runner.gear_sweep(*workloads::make_workload("CG"), 1)));
  const auto ep_rel = model::relative_to_fastest(model::curve_from_runs(
      runner.gear_sweep(*workloads::make_workload("EP"), 1)));
  out.cg_vs_ep = cg_rel[1].energy_delta < -0.05 &&
                 ep_rel[1].energy_delta > -0.05 &&
                 cg_rel[4].energy_delta < ep_rel[4].energy_delta;

  const auto lu = workloads::make_workload("LU");
  out.lu_case3 =
      model::classify_transition(
          model::curve_from_runs(runner.gear_sweep(*lu, 4)),
          model::curve_from_runs(runner.gear_sweep(*lu, 8))) ==
      model::SpeedupCase::kGoodSpeedup;
  return out;
}

std::string mark(bool ok) { return ok ? "yes" : "NO"; }

int run(bench::BenchContext& ctx) {
  std::cout << "=== Calibration sensitivity: +/-20% on each model knob ===\n\n";

  struct Variant {
    std::string name;
    std::function<void(cluster::ClusterConfig&)> mutate;
  };
  const std::vector<Variant> variants = {
      {"baseline", [](cluster::ClusterConfig&) {}},
      {"upc_eff -20%",
       [](cluster::ClusterConfig& c) { c.cpu.upc_eff *= 0.8; }},
      {"upc_eff +20%",
       [](cluster::ClusterConfig& c) { c.cpu.upc_eff *= 1.2; }},
      {"mem latency -20%",
       [](cluster::ClusterConfig& c) { c.cpu.mem_latency *= 0.8; }},
      {"mem latency +20%",
       [](cluster::ClusterConfig& c) { c.cpu.mem_latency *= 1.2; }},
      {"base power -20%",
       [](cluster::ClusterConfig& c) { c.power.base *= 0.8; }},
      {"base power +20%",
       [](cluster::ClusterConfig& c) { c.power.base *= 1.2; }},
      {"static<->dynamic shift",
       [](cluster::ClusterConfig& c) {
         c.power.cpu_static *= 1.5;   // 20 -> 30 W
         c.power.cpu_dynamic *= 0.8;  // 55 -> 44 W
       }},
      {"imbalance x5",
       [](cluster::ClusterConfig& c) { c.load_imbalance *= 5.0; }},
  };

  TextTable table({"variant", "S1 bound", "S2 fastest", "S3 ordering",
                   "S4 CG vs EP", "S5 LU case 3"});
  bool structural_ok = true;
  int claims_held = 0;
  for (const auto& v : variants) {
    cluster::ClusterConfig config = cluster::athlon_cluster();
    v.mutate(config);
    const ClaimChecks c = check_claims(config);
    structural_ok = structural_ok && c.bound && c.fastest;
    claims_held += static_cast<int>(c.bound) + static_cast<int>(c.fastest) +
                   static_cast<int>(c.concordance) +
                   static_cast<int>(c.cg_vs_ep) + static_cast<int>(c.lu_case3);
    table.add_row({v.name, mark(c.bound), mark(c.fastest),
                   mark(c.concordance), mark(c.cg_vs_ep), mark(c.lu_case3)});
  }
  std::cout << table.to_string() << '\n'
            << "S1/S2 are structural (timing-model consequences) and must"
               " hold under every perturbation: "
            << (structural_ok ? "verified" : "VIOLATED") << ".\n"
            << "S3-S5 are calibration-dependent; rows where they flip mark"
               " the edge of the reproduction's validity envelope.\n";
  ctx.metric("structural_ok", structural_ok ? 1.0 : 0.0);
  ctx.metric("claims_held", static_cast<double>(claims_held));
  return structural_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "sensitivity_calibration", run);
}
