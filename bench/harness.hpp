// The shared bench front end.
//
// Every bench/* target funnels through bench_main(), which gives the
// whole suite one invocation convention (CI runs them in a single
// uniform loop — no per-binary special cases):
//
//   <bench> [--svg DIR] [--json PATH] [--wall-profile]
//
//   --svg DIR       figure-producing benches write their SVGs here;
//                   others ignore it.
//   --json PATH     write the bench's result document.  PATH ending in
//                   ".json" is used verbatim; anything else is treated
//                   as a directory and the document lands at
//                   PATH/BENCH_<name>.json.
//   --wall-profile  opt into wall-clock metrics (ctx.wall_metric and
//                   harness timings still work without it; this flag
//                   only gates *library* wall instrumentation a bench
//                   wires up itself, e.g. SweepOptions.metrics).
//
// Unknown flags are ignored (with a stderr note), so one CI loop can
// pass the union of flags to every binary.
//
// The result document (obs::kBenchSchema, "gearsim-bench/1") has two
// metric sections with different contracts:
//   * metrics — deterministic, simulation-domain headline values
//     (ctx.metric).  These are what tools/bench_compare gates against
//     the committed baselines in bench/baselines/.
//   * wall    — wall-clock measurements (ctx.wall_metric) plus the
//     bench's total runtime.  Informational; never compared.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>

namespace gearsim::bench {

class BenchContext {
 public:
  explicit BenchContext(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  /// Figure output directory; empty means "don't write figures".
  [[nodiscard]] const std::string& svg_dir() const { return svg_dir_; }
  [[nodiscard]] bool figures() const { return !svg_dir_.empty(); }
  /// True when --wall-profile was passed (see header comment).
  [[nodiscard]] bool wall_profile() const { return wall_profile_; }

  /// Record a deterministic headline value — the regression gate
  /// compares these against bench/baselines/<name>.json.
  void metric(std::string_view key, double value);
  /// Record a wall-clock measurement (never compared).
  void wall_metric(std::string_view key, double value);
  /// Free-form context string for the result document.
  void info(std::string_view key, std::string_view value);

  /// Canonical result document (obs::kBenchSchema).
  [[nodiscard]] std::string to_json(double wall_seconds) const;

 private:
  friend int bench_main(int argc, char** argv, std::string_view name,
                        const std::function<int(BenchContext&)>& body);

  std::string name_;
  std::string svg_dir_;
  std::string json_path_;
  bool wall_profile_ = false;
  std::map<std::string, double> metrics_;
  std::map<std::string, double> wall_metrics_;
  std::map<std::string, std::string> info_;
};

/// Parse the uniform flags, run `body`, and write the result document
/// when requested.  Returns the body's exit code (1 if it threw).
int bench_main(int argc, char** argv, std::string_view name,
               const std::function<int(BenchContext&)>& body);

/// Seconds per operation of `op`, measured with a self-calibrating
/// batch loop (replaces the google-benchmark dependency): batches grow
/// geometrically until one takes at least `min_seconds`, and the
/// fastest batch's per-op time is reported (the usual micro-bench
/// estimator — least contaminated by scheduler noise).
double time_op(const std::function<void()>& op, double min_seconds = 0.02);

}  // namespace gearsim::bench
