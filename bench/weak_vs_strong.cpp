// Weak vs strong scaling — the energy consequence of "non-scaled speedup"
// (paper §4.2).
//
// "speedup on the NAS suite generally starts to tail off around 25 or 32
// nodes.  Again, this is because this benchmark suite uses non-scaled
// speedup.  The result of this is that the total cluster energy consumed
// starts to increase dramatically."
//
// This harness runs Jacobi both ways on a 32-node power-scalable cluster:
// strong-scaled (the paper's regime — fixed problem, shrinking per-rank
// work) and weak-scaled (per-rank work held constant).  Strong scaling's
// cluster energy climbs as parallel efficiency decays; weak scaling's
// energy grows ~linearly with nodes while energy *per unit of work* stays
// flat — and at every scale, a lower gear still trims the bill.
#include <iostream>

#include "cluster/experiment.hpp"
#include "harness.hpp"
#include "model/tradeoff.hpp"
#include "util/table.hpp"
#include "workloads/jacobi.hpp"

using namespace gearsim;

namespace {

int run(bench::BenchContext& ctx) {
  cluster::ClusterConfig config = cluster::athlon_cluster();
  config.max_nodes = 32;
  config.network.backplane_bandwidth = 32 * config.network.link_bandwidth;
  cluster::ExperimentRunner runner(config);

  const workloads::Jacobi strong;  // Fixed problem.
  workloads::Jacobi::Params weak_params;
  weak_params.weak_scaling = true;
  const workloads::Jacobi weak(weak_params);

  std::cout << "=== Weak vs strong scaling: Jacobi on up to 32 nodes ===\n\n";

  TextTable table({"nodes", "strong time [s]", "strong energy [kJ]",
                   "strong E/E(1)", "weak time [s]", "weak energy/node [kJ]",
                   "weak E-per-work"});
  const cluster::RunResult strong1 = runner.run(strong, 1, 0);
  const cluster::RunResult weak1 = runner.run(weak, 1, 0);
  bool strong_blows_up = false;
  bool weak_stays_flat = true;
  double strong_ratio_32 = 0.0;
  double weak_per_work_32 = 0.0;
  for (int n : {1, 2, 4, 8, 16, 32}) {
    const cluster::RunResult s = runner.run(strong, n, 0);
    const cluster::RunResult w = runner.run(weak, n, 0);
    const double strong_ratio = s.energy / strong1.energy;
    // Weak scaling performs n units of work; normalize per unit.
    const double weak_per_work =
        w.energy.value() / n / weak1.energy.value();
    if (n == 32) {
      if (strong_ratio > 1.5) strong_blows_up = true;
      strong_ratio_32 = strong_ratio;
      weak_per_work_32 = weak_per_work;
    }
    if (weak_per_work > 1.25) weak_stays_flat = false;
    table.add_row({std::to_string(n), fmt_fixed(s.wall.value(), 1),
                   fmt_fixed(s.energy.value() / 1e3, 1),
                   fmt_fixed(strong_ratio, 2), fmt_fixed(w.wall.value(), 1),
                   fmt_fixed(w.energy.value() / 1e3 / n, 1),
                   fmt_fixed(weak_per_work, 2)});
  }
  std::cout << table.to_string() << '\n'
            << "Strong scaling's cluster energy climbs ("
            << (strong_blows_up ? "reproduced" : "NOT reproduced")
            << "); weak scaling's energy per unit of work stays flat ("
            << (weak_stays_flat ? "reproduced" : "NOT reproduced") << ").\n\n";

  // And the paper's safeguard applies in both regimes: a lower gear keeps
  // paying at 32 nodes.
  const model::Curve weak32 =
      model::curve_from_runs(runner.gear_sweep(weak, 32));
  const auto rel = model::relative_to_fastest(weak32);
  std::cout << "Weak-scaled Jacobi at 32 nodes, gear 5 vs gear 1: "
            << fmt_percent(rel[4].time_delta) << " time, "
            << fmt_percent(rel[4].energy_delta) << " energy\n";
  ctx.metric("strong.energy_ratio_32", strong_ratio_32);
  ctx.metric("weak.energy_per_work_32", weak_per_work_32);
  ctx.metric("weak32.gear5.time_delta", rel[4].time_delta);
  ctx.metric("weak32.gear5.energy_delta", rel[4].energy_delta);
  return (strong_blows_up && weak_stays_flat) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "weak_vs_strong", run);
}
