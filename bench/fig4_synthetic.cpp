// Figure 4 — Synthetic benchmark with high memory pressure.
//
// The benchmark models CG's memory behavior but scales well (speedup > 7
// on 8 nodes), demonstrating the *potential* of a power-scalable cluster:
//   * gear 5 costs ~3% time and saves ~24% energy (1 node);
//   * gear 5 on 8 nodes vs gear 1 on 4 nodes: ~80% of the energy in
//     ~half the time.
// Also reports the L2 miss rate of the generator's address stream as
// replayed through the modeled Athlon-64 cache hierarchy (the paper
// quotes 7%).
#include <iostream>

#include <string>

#include "cluster/experiment.hpp"
#include "harness.hpp"
#include "report/figures.hpp"
#include "model/tradeoff.hpp"
#include "util/table.hpp"
#include "workloads/synthetic.hpp"

using namespace gearsim;

namespace {

int run(bench::BenchContext& ctx) {
  const std::string& svg_dir = ctx.svg_dir();
  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  const workloads::Synthetic synth;

  std::cout << "=== Figure 4: synthetic high-memory-pressure benchmark ===\n\n"
            << "Cache-simulated L2 miss rate of the access pattern: "
            << fmt_percent(synth.measured_l2_miss_rate(), 1)
            << " of memory references (paper: 7%)\n\n";

  std::vector<model::Curve> curves;
  TextTable table({"nodes", "gear", "time [s]", "energy [kJ]"});
  for (int n : {1, 2, 4, 8}) {
    const auto runs = runner.gear_sweep(synth, n);
    curves.push_back(model::curve_from_runs(runs));
    bool first = true;
    for (const auto& p : curves.back().points) {
      table.add_row({first ? std::to_string(n) : "",
                     std::to_string(p.gear_label),
                     fmt_fixed(p.time.value(), 1),
                     fmt_fixed(p.energy.value() / 1e3, 2)});
      first = false;
    }
    table.add_rule();
  }
  std::cout << table.to_string() << '\n';
  if (!svg_dir.empty()) {
    report::energy_time_figure("Figure 4: synthetic benchmark", curves)
        .write(svg_dir + "/fig4_synthetic.svg");
  }

  const model::Curve& c1 = curves[0];
  const model::Curve& c4 = curves[2];
  const model::Curve& c8 = curves[3];
  const auto rel1 = model::relative_to_fastest(c1);
  const double speedup8 = c1.fastest().time / c8.fastest().time;

  const auto& g1on4 = c4.at_gear(1);
  const auto& g5on8 = c8.at_gear(5);

  TextTable t({"claim", "paper", "measured"});
  t.add_row({"gear 5 time penalty (1 node)", "~+3%",
             fmt_percent(rel1[4].time_delta)});
  t.add_row({"gear 5 energy savings (1 node)", "-24%",
             fmt_percent(rel1[4].energy_delta)});
  t.add_row({"speedup on 8 nodes", ">7", fmt_fixed(speedup8, 2)});
  t.add_row({"gear5@8 energy vs gear1@4", "~80%",
             fmt_fixed(100.0 * (g5on8.energy / g1on4.energy), 0) + "%"});
  t.add_row({"gear5@8 time vs gear1@4", "~50%",
             fmt_fixed(100.0 * (g5on8.time / g1on4.time), 0) + "%"});
  std::cout << "=== Figure 4 headline comparisons ===\n" << t.to_string();

  const bool dominated =
      g5on8.time <= g1on4.time && g5on8.energy <= g1on4.energy;
  std::cout << "\nGear 5 on 8 nodes dominates gear 1 on 4 nodes: "
            << (dominated ? "yes" : "NO") << '\n';
  ctx.metric("l2_miss_rate", synth.measured_l2_miss_rate());
  ctx.metric("gear5.time_delta", rel1[4].time_delta);
  ctx.metric("gear5.energy_delta", rel1[4].energy_delta);
  ctx.metric("speedup_8_nodes", speedup8);
  ctx.metric("dominated", dominated ? 1.0 : 0.0);
  return dominated ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "fig4_synthetic", run);
}
