// Multi-tenant power-cap mix (the production-mode companion to
// powercap_scheduling).
//
// powercap_scheduling sweeps the cap over the paper's single-tenant
// greedy scheduler, where every job's (nodes, gear) is frozen at
// placement.  This bench runs the same rack in *batch* mode: a 12-job
// LoadLeveler-style queue with mixed energy-policy tags arrives over
// five minutes, a two-node outage hits mid-run, and the GearArbiter
// re-assigns gears at every event so a finished or crashed job's power
// budget flows to the survivors instead of sitting parked.  At each cap
// level we schedule the identical queue twice — arbitration on, and the
// frozen-gear control arm (BatchOptions.arbitrate = false) — and report
// the makespan the redistribution buys back.
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "exec/result_cache.hpp"
#include "exec/sweep_runner.hpp"
#include "harness.hpp"
#include "sched/scheduler.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

using namespace gearsim;

namespace {

// The queue goes in as a job script — same grammar the `gearsim sched`
// command and docs/SCHEDULER.md describe — so the bench exercises the
// parser end to end, not just the scheduler.
const char* const kMixScript = R"(#!/bin/sh
#@ job_name = cg-a
#@ workload = CG
#@ total_tasks = 8
#@ minimize_time_to_solution = yes
#@ queue
#@ job_name = lu-a
#@ workload = LU
#@ total_tasks = 4
#@ minimize_energy_to_solution = yes
#@ queue
#@ job_name = ep-a
#@ workload = EP
#@ total_tasks = 2
#@ queue
#@ job_name = cg-b
#@ workload = CG
#@ total_tasks = 4
#@ arrival = 30
#@ minimize_energy_to_solution = yes
#@ queue
#@ job_name = lu-b
#@ workload = LU
#@ total_tasks = 8
#@ arrival = 60
#@ minimize_time_to_solution = yes
#@ queue
#@ job_name = ep-b
#@ workload = EP
#@ total_tasks = 4
#@ arrival = 90
#@ queue
#@ job_name = cg-c
#@ workload = CG
#@ total_tasks = 2
#@ arrival = 120
#@ queue
#@ job_name = lu-c
#@ workload = LU
#@ total_tasks = 2
#@ arrival = 150
#@ minimize_energy_to_solution = yes
#@ queue
#@ job_name = ep-c
#@ workload = EP
#@ total_tasks = 8
#@ arrival = 180
#@ minimize_time_to_solution = yes
#@ queue
#@ job_name = cg-d
#@ workload = CG
#@ total_tasks = 4
#@ arrival = 210
#@ minimize_time_to_solution = yes
#@ queue
#@ job_name = lu-d
#@ workload = LU
#@ total_tasks = 4
#@ arrival = 240
#@ queue
#@ job_name = ep-d
#@ workload = EP
#@ total_tasks = 2
#@ arrival = 270
#@ minimize_energy_to_solution = yes
#@ queue
)";

int run(bench::BenchContext& ctx) {
  // Profiles come through the sweep executor (GEARSIM_SWEEP_JOBS,
  // GEARSIM_CACHE_DIR honored) — with a shared cache dir this bench and
  // powercap_scheduling measure the same 54 points exactly once between
  // them.
  exec::ResultCache::Options cache_options;
  if (const char* dir = std::getenv("GEARSIM_CACHE_DIR")) {
    cache_options.disk_dir = dir;
  }
  exec::ResultCache cache(cache_options);
  exec::SweepOptions sweep_options;
  sweep_options.cache = &cache;
  const exec::SweepRunner runner(cluster::athlon_cluster(), sweep_options);

  std::map<std::string, sched::WorkloadProfile> profiles;
  for (const char* name : {"CG", "LU", "EP"}) {
    const auto workload = workloads::make_workload(name);
    profiles.emplace(name,
                     sched::WorkloadProfile::measure(runner, *workload, 8));
  }

  std::vector<sched::BatchJob> jobs;
  for (const auto& script : sched::parse_job_scripts(kMixScript)) {
    jobs.push_back({script, &profiles.at(script.workload)});
  }
  // Two nodes fail while the queue is at its deepest and come back three
  // minutes later — the redistribution stress the arbiter exists for.
  const std::vector<sched::NodeOutage> outages = {
      {seconds(120.0), 2, seconds(180.0)}};

  std::cout << "=== Power-cap mix: 12-job batch queue, gear arbitration"
               " vs frozen gears ===\n"
            << "(10 nodes idling at 85 W each; two-node outage at t=120 s,"
               " repaired at t=300 s)\n\n";

  TextTable table({"cap [W]", "arbitrated [s]", "frozen [s]", "gain [s]",
                   "arb energy [kJ]", "redistributed [W]", "min headroom [W]"});
  bool caps_respected = true;
  bool deterministic = true;
  double tightest_gain = 0.0;
  for (double cap : {1500.0, 1250.0, 1100.0}) {
    const sched::Machine rack{10, watts(cap), watts(85.0)};
    const sched::BatchScheduler arb(
        rack, {sched::QueueDiscipline::kGreedy, /*arbitrate=*/true});
    const sched::BatchScheduler frozen(
        rack, {sched::QueueDiscipline::kGreedy, /*arbitrate=*/false});
    const auto a = arb.schedule(jobs, outages);
    const auto f = frozen.schedule(jobs, outages);
    const auto rerun = arb.schedule(jobs, outages);
    if (a.makespan != rerun.makespan ||
        a.total_energy() != rerun.total_energy() ||
        a.redistributed_watts != rerun.redistributed_watts) {
      deterministic = false;
    }
    for (const auto* r : {&a, &f}) {
      if (r->min_headroom.value() < 0.0 || r->peak_power.value() > cap) {
        caps_respected = false;
      }
    }
    const double gain = f.makespan.value() - a.makespan.value();
    tightest_gain = gain;  // Caps iterate loosest to tightest.
    table.add_row({fmt_fixed(cap, 0), fmt_fixed(a.makespan.value(), 1),
                   fmt_fixed(f.makespan.value(), 1), fmt_fixed(gain, 1),
                   fmt_fixed(a.total_energy().value() / 1e3, 1),
                   fmt_fixed(a.redistributed_watts.value(), 0),
                   fmt_fixed(a.min_headroom.value(), 0)});
    const std::string prefix = "cap" + fmt_fixed(cap, 0);
    ctx.metric(prefix + ".arb_makespan_s", a.makespan.value());
    ctx.metric(prefix + ".frozen_makespan_s", f.makespan.value());
    ctx.metric(prefix + ".arb_energy_kj", a.total_energy().value() / 1e3);
    ctx.metric(prefix + ".frozen_energy_kj", f.total_energy().value() / 1e3);
    ctx.metric(prefix + ".redistributed_w", a.redistributed_watts.value());
    ctx.metric(prefix + ".preemptions", static_cast<double>(a.preemptions));
  }
  std::cout << table.to_string() << '\n'
            << "Cap invariant held at every sampled event on every run: "
            << (caps_respected ? "verified" : "VIOLATED") << ".\n"
            << "Arbitrated reruns byte-identical: "
            << (deterministic ? "verified" : "VIOLATED") << ".\n";

  const auto stats = runner.cache_stats();
  ctx.info("profile_cache", std::to_string(stats.hits + stats.disk_hits) +
                                " hits / " + std::to_string(stats.misses) +
                                " misses");
  ctx.metric("caps_respected", caps_respected ? 1.0 : 0.0);
  ctx.metric("deterministic", deterministic ? 1.0 : 0.0);
  ctx.metric("tightest_cap_gain_s", tightest_gain);
  return (caps_respected && deterministic) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "powercap_mix", run);
}
