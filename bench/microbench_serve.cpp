// Microbenchmark: what-if service throughput across cache temperatures.
//
// Exercises the serve stack the way a daemon session does — one Jacobi
// sweep query (6 points) asked many ways against one serve::Service over
// a sharded disk store:
//
//   cold       first query: every point simulates, store fills
//   coalesced  8 concurrent identical queries while the cache is hot
//   hot        200 sequential queries answered from the memory LRU
//   preload    daemon restart with --preload, then one query from the
//              warm-started memory tier (no disk reads on the query path)
//
// The deterministic gate (tools/bench_compare) holds the service to its
// contracts: every response byte-identical to the cold one, exactly one
// simulation per unique point no matter how many clients asked, the
// whole store preloaded on restart, and the admission gate's
// deterministic reject.  Latencies land in the (never-compared) wall
// section of BENCH_microbench_serve.json.
#include <chrono>
#include <filesystem>
#include <iostream>
#include <thread>
#include <vector>

#include "harness.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"

using namespace gearsim;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int run(bench::BenchContext& ctx) {
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const std::filesystem::path store =
      std::filesystem::temp_directory_path() / "gearsim_bench_serve_store";
  std::filesystem::remove_all(store);

  serve::Request query;
  query.type = "sweep";
  query.workload = "Jacobi";
  query.nodes = 2;
  const std::string line = serve::render_request(query);

  serve::ServiceOptions options;
  options.cache.disk_dir = store.string();
  options.cache.shard_digits = 2;
  options.jobs = static_cast<int>(cores);

  bool byte_identical = true;
  std::string expected;
  double t_cold = 0.0;
  double t_coalesced = 0.0;
  double t_hot = 0.0;
  std::uint64_t simulations = 0;
  const int kHotQueries = 200;
  const std::size_t kClients = 8;
  {
    serve::Service service(options);
    auto start = std::chrono::steady_clock::now();
    expected = service.handle_line(line);
    t_cold = seconds_since(start);
    std::cout << "cold query (6 simulations):   " << t_cold << " s\n";

    // Concurrent identical queries: dedup + the hot cache must absorb
    // them all without a single extra simulation.
    std::vector<std::string> responses(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    start = std::chrono::steady_clock::now();
    for (std::size_t t = 0; t < kClients; ++t) {
      clients.emplace_back(
          [&, t] { responses[t] = service.handle_line(line); });
    }
    for (std::thread& t : clients) t.join();
    t_coalesced = seconds_since(start);
    for (const std::string& r : responses) {
      byte_identical = byte_identical && r == expected;
    }
    std::cout << kClients << " concurrent clients:        " << t_coalesced
              << " s\n";

    start = std::chrono::steady_clock::now();
    for (int i = 0; i < kHotQueries; ++i) {
      byte_identical = byte_identical && service.handle_line(line) == expected;
    }
    t_hot = seconds_since(start);
    std::cout << kHotQueries << " hot queries:             " << t_hot
              << " s (" << static_cast<double>(kHotQueries) / t_hot
              << " q/s)\n";
    simulations = service.simulations();
  }

  // Daemon restart with --preload: the store warm-starts the memory
  // tier, so the first query of the new process is already a memory hit.
  serve::ServiceOptions warm_options = options;
  warm_options.preload = true;
  auto start = std::chrono::steady_clock::now();
  serve::Service warm(warm_options);
  const double t_preload = seconds_since(start);
  const std::uint64_t preloaded = warm.cache().stats().preloaded;
  start = std::chrono::steady_clock::now();
  byte_identical = byte_identical && warm.handle_line(line) == expected;
  const double t_warm_query = seconds_since(start);
  const bool warm_from_memory = warm.simulations() == 0 &&
                                warm.cache().stats().disk_hits == 0;
  std::cout << "preload (" << preloaded << " entries):         " << t_preload
            << " s, first warm query " << t_warm_query << " s\n";

  // Deterministic backpressure: a 2-unit batch cannot queue behind a
  // 1-slot queue, so the reject is timing-free.
  serve::AdmissionGate gate({/*admit=*/2, /*queue=*/1});
  const bool reject_ok = gate.acquire(2) && !gate.acquire(2) &&
                         gate.stats().rejected == 1;

  if (!byte_identical) {
    std::cerr << "FAIL: served responses diverged from the cold bytes\n";
  }
  std::cout << "bit-identity: "
            << (byte_identical ? "OK (cold/coalesced/hot/preload byte-equal)"
                               : "FAILED")
            << "\n"
            << "exactly-once: " << simulations << " simulation(s) for 6 "
            << "unique points across " << 1 + kClients + kHotQueries
            << " queries\n";

  ctx.info("workload", "Jacobi");
  ctx.metric("points", 6.0);
  ctx.metric("unique_simulations", static_cast<double>(simulations));
  ctx.metric("byte_identical", byte_identical ? 1.0 : 0.0);
  ctx.metric("preloaded", static_cast<double>(preloaded));
  ctx.metric("preload_from_memory", warm_from_memory ? 1.0 : 0.0);
  ctx.metric("deterministic_reject", reject_ok ? 1.0 : 0.0);
  ctx.wall_metric("cores", static_cast<double>(cores));
  ctx.wall_metric("cold_s", t_cold);
  ctx.wall_metric("coalesced_clients_s", t_coalesced);
  ctx.wall_metric("hot_queries_s", t_hot);
  ctx.wall_metric("hot_queries_per_s",
                  static_cast<double>(kHotQueries) / t_hot);
  ctx.wall_metric("preload_s", t_preload);
  ctx.wall_metric("warm_query_s", t_warm_query);

  std::filesystem::remove_all(store);
  return byte_identical && simulations == 6 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "microbench_serve", run);
}
