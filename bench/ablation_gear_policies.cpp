// Ablation — DVFS gear policies (the paper's future work, §5).
//
// Compares, for each NAS benchmark on 8 (or 9) nodes:
//   * uniform gears (the paper's measured scope): the fastest gear and
//     the per-benchmark minimum-energy uniform gear;
//   * comm-downshift: compute at gear 1, park at the slowest gear while
//     blocked in MPI (future work #3: an MPI runtime that "automatically
//     reduces the energy gear");
//   * node-bottleneck planning (future work #2): per-rank static gears
//     derived from a profile run's load imbalance.
// Reports time, energy, energy-delay product, and DVFS transition counts.
#include <iostream>

#include "cluster/dvfs.hpp"
#include "harness.hpp"
#include "model/gear_data.hpp"
#include "model/tradeoff.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

using namespace gearsim;

namespace {

int run(bench::BenchContext& ctx) {
  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  const std::size_t slowest = runner.num_gears() - 1;

  std::cout << "=== Ablation: DVFS gear policies (8/9 nodes) ===\n\n";

  TextTable table({"bench", "policy", "time [s]", "energy [kJ]",
                   "EDP [kJ*s]", "vs gear-1 time", "vs gear-1 energy",
                   "switches"});

  for (const auto& entry : workloads::nas_suite()) {
    const auto workload = entry.make();
    const int nodes = workload->supports(8) ? 8 : 9;

    // Baselines: uniform fastest and uniform min-energy gear.
    const auto sweep = runner.gear_sweep(*workload, nodes);
    const model::Curve curve = model::curve_from_runs(sweep);
    const std::size_t best_uniform = model::min_energy_index(curve);

    // Per-gear slowdown ladder for the bottleneck planner.
    const model::GearData gear_data =
        model::measure_gear_data(runner, *workload);
    std::vector<double> slowdowns;
    for (const auto& g : gear_data.gears) slowdowns.push_back(g.slowdown);

    cluster::UniformGear fastest(0);
    cluster::UniformGear economical(best_uniform);
    cluster::CommDownshift downshift(0, slowest);
    cluster::PerRankGear planned = cluster::plan_node_bottleneck(
        runner.run(*workload, nodes, 0), slowdowns, /*safety=*/0.9);
    cluster::SlackAdaptive adaptive(cluster::SlackAdaptive::Params{},
                                    nodes);

    const cluster::RunResult base = sweep.front();
    const std::vector<cluster::GearPolicy*> policies = {
        &fastest, &economical, &downshift, &planned, &adaptive};
    const char* keys[] = {"fastest", "economical", "downshift", "planned",
                          "adaptive"};
    for (std::size_t i = 0; i < policies.size(); ++i) {
      cluster::GearPolicy* policy = policies[i];
      cluster::RunOptions options;
      options.policy = policy;
      const cluster::RunResult r = runner.run(*workload, nodes, options);
      table.add_row(
          {entry.name, policy->name(), fmt_fixed(r.wall.value(), 1),
           fmt_fixed(r.energy.value() / 1e3, 1),
           fmt_fixed(r.energy.value() / 1e3 * r.wall.value() / 1e3, 1),
           fmt_percent(r.wall / base.wall - 1.0),
           fmt_percent(r.energy / base.energy - 1.0),
           std::to_string(r.gear_switches)});
      ctx.metric(entry.name + std::string(".") + keys[i] + ".energy_delta",
                 r.energy / base.energy - 1.0);
      ctx.metric(entry.name + std::string(".") + keys[i] + ".time_delta",
                 r.wall / base.wall - 1.0);
    }
    table.add_rule();
  }

  std::cout << table.to_string() << '\n'
            << "Note the slack-adaptive pathology on the ADI codes (SP/BT):"
               " their blocking is *symmetric* synchronization, so when\n"
               "every rank slows down the blocked share stays high and the"
               " controller never recovers — absolute blocked-share\n"
               "feedback cannot distinguish \"I have slack\" from"
               " \"everyone is waiting together\" (the insight behind the"
               " later Adagio work).\n"
            << "Notes: comm-downshift pays two "
            << fmt_fixed(
                   runner.config().gear_switch_latency.value() * 1e6, 0)
            << " us DVFS transitions per blocking MPI call, so it only\n"
               "wins when blocked intervals are long (CG); the bottleneck"
               " plan exploits static load imbalance and is free of\n"
               "transition overhead but limited by how little imbalance"
               " these benchmarks have.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "ablation_gear_policies", run);
}
