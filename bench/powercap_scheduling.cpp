// Power-cap scheduling sweep (extension of the paper's §3.2 discussion).
//
// "If there is a limit for energy/power consumption or heat dissipation,
// this would be represented as a horizontal line.  For programs in this
// case, the line will intersect at most one of the curves.  The most
// desirable point would be the leftmost (fastest) one under the limit."
//
// This harness sweeps the rack's power cap and schedules the same NAS job
// queue at each level, on two machines: a power-scalable rack (all six
// gears available) and a conventional fixed-gear rack (gear 1 only).  The
// gap between them is the paper's argument, quantified: under tight caps
// the conventional rack must leave nodes parked, while the power-scalable
// one runs wide at low gears.
#include <cstdlib>
#include <iostream>
#include <string>

#include "exec/result_cache.hpp"
#include "exec/sweep_runner.hpp"
#include "harness.hpp"
#include "sched/scheduler.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

using namespace gearsim;

namespace {

sched::WorkloadProfile restrict_to_gear_one(const sched::WorkloadProfile& p) {
  std::vector<sched::ConfigPoint> points;
  for (const auto& pt : p.points()) {
    if (pt.gear_label == 1) points.push_back(pt);
  }
  return sched::WorkloadProfile(p.workload_name() + "@g1", std::move(points));
}

int run(bench::BenchContext& ctx) {
  // Profiles are measured through the sweep executor: GEARSIM_SWEEP_JOBS
  // parallelizes the configuration grid and GEARSIM_CACHE_DIR (e.g.
  // out/cache) lets repeated bench runs skip every already-simulated
  // point — both bit-identical to the serial ExperimentRunner path.
  exec::ResultCache::Options cache_options;
  if (const char* dir = std::getenv("GEARSIM_CACHE_DIR")) {
    cache_options.disk_dir = dir;
  }
  exec::ResultCache cache(cache_options);
  exec::SweepOptions sweep_options;
  sweep_options.cache = &cache;
  const exec::SweepRunner runner(cluster::athlon_cluster(), sweep_options);

  const auto cg = workloads::make_workload("CG");
  const auto lu = workloads::make_workload("LU");
  const auto ep = workloads::make_workload("EP");
  const sched::WorkloadProfile cg_p =
      sched::WorkloadProfile::measure(runner, *cg, 8);
  const sched::WorkloadProfile lu_p =
      sched::WorkloadProfile::measure(runner, *lu, 8);
  const sched::WorkloadProfile ep_p =
      sched::WorkloadProfile::measure(runner, *ep, 8);
  const auto cache_stats = runner.cache_stats();
  ctx.info("profile_cache",
           std::to_string(cache_stats.hits + cache_stats.disk_hits) +
               " hits / " + std::to_string(cache_stats.misses) + " misses");
  const sched::WorkloadProfile cg_g1 = restrict_to_gear_one(cg_p);
  const sched::WorkloadProfile lu_g1 = restrict_to_gear_one(lu_p);
  const sched::WorkloadProfile ep_g1 = restrict_to_gear_one(ep_p);

  const std::vector<sched::Job> scalable_queue = {
      {"cg", &cg_p}, {"lu", &lu_p}, {"ep", &ep_p}};
  const std::vector<sched::Job> fixed_queue = {
      {"cg", &cg_g1}, {"lu", &lu_g1}, {"ep", &ep_g1}};

  std::cout << "=== Power-cap sweep: power-scalable vs fixed-gear rack ===\n"
            << "(10 nodes, min-time greedy scheduling, 3-job NAS queue; the rack\n idles at ~850 W, so caps below ~1000 W cannot even park it)\n\n";

  // The scalable rack's configuration space strictly contains the fixed
  // rack's, so an *optimal* scheduler can never do worse.  A myopic
  // greedy policy can, though: per-job min-time grabs power headroom that
  // would have let other jobs coexist.  We therefore schedule the
  // scalable rack under each objective and report the best — and flag
  // the caps where plain min-time loses to the fixed rack (the myopia).
  TextTable table({"cap [W]", "scalable best [s]", "best objective",
                   "min-time only [s]", "fixed (g1) [s]",
                   "scalable energy [kJ]", "fixed energy [kJ]"});
  bool best_never_worse = true;
  bool saw_min_time_myopia = false;
  for (double cap : {1500.0, 1400.0, 1300.0, 1200.0, 1100.0, 1000.0}) {
    const sched::Machine rack{10, watts(cap), watts(85.0)};
    const auto fixed =
        sched::Scheduler(rack, sched::WorkloadProfile::Objective::kMinTime,
                         sched::QueueDiscipline::kGreedy)
            .schedule(fixed_queue);
    sched::ScheduleResult best{};
    sched::ScheduleResult min_time_only{};
    std::string best_name;
    for (const auto objective : {sched::WorkloadProfile::Objective::kMinTime,
                                 sched::WorkloadProfile::Objective::kMinEdp,
                                 sched::WorkloadProfile::Objective::kMinEnergy}) {
      const auto r =
          sched::Scheduler(rack, objective, sched::QueueDiscipline::kGreedy)
              .schedule(scalable_queue);
      if (objective == sched::WorkloadProfile::Objective::kMinTime) {
        min_time_only = r;
      }
      if (best_name.empty() || r.makespan < best.makespan) {
        best = r;
        best_name = to_string(objective);
      }
    }
    // The operator of a scalable rack can always fall back to gear-1-only
    // scheduling, so the fixed schedule is one of its candidates too.
    if (fixed.makespan < best.makespan) {
      best = fixed;
      best_name = "gear-1 fallback";
    }
    if (best.makespan.value() > fixed.makespan.value() + 1e-9) {
      best_never_worse = false;
    }
    if (min_time_only.makespan.value() > fixed.makespan.value() + 1e-9) {
      saw_min_time_myopia = true;
    }
    table.add_row({fmt_fixed(cap, 0), fmt_fixed(best.makespan.value(), 1),
                   best_name, fmt_fixed(min_time_only.makespan.value(), 1),
                   fmt_fixed(fixed.makespan.value(), 1),
                   fmt_fixed(best.total_energy().value() / 1e3, 1),
                   fmt_fixed(fixed.total_energy().value() / 1e3, 1)});
    const std::string prefix = "cap" + fmt_fixed(cap, 0);
    ctx.metric(prefix + ".scalable_makespan_s", best.makespan.value());
    ctx.metric(prefix + ".fixed_makespan_s", fixed.makespan.value());
  }
  std::cout << table.to_string() << '\n'
            << "Best-objective scalable scheduling is never slower than the"
               " fixed-gear rack: "
            << (best_never_worse ? "verified" : "VIOLATED") << ".\n";
  if (saw_min_time_myopia) {
    std::cout << "Note: per-job min-time alone *can* lose under mid caps —"
                 " it burns the power budget on one wide, fast job and"
                 " serializes the rest.  Gear freedom needs an objective"
                 " that values headroom (min-EDP/min-energy above).\n";
  }
  ctx.metric("best_never_worse", best_never_worse ? 1.0 : 0.0);
  return best_never_worse ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "powercap_scheduling", run);
}
