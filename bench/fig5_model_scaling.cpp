// Figure 5 — Simulated results: energy vs time from 2 to 32 nodes.
//
// Runs the paper's five-step methodology end to end for each NAS
// benchmark:
//   * node counts up to 9 are actual (simulated-cluster) runs at every
//     gear, exactly like Figure 2;
//   * 16, 25, and 32 nodes are predictions from the Section-4 model,
//     built from fastest-gear traces on <= 9 power-scalable nodes, the
//     32-node fixed-gear validation cluster, and single-node per-gear
//     (S_g, P_g, I_g) data.
// Communication shapes are fixed a priori as in the paper: BT, EP, MG, SP
// logarithmic; CG quadratic; LU constant (the validation-corrected
// choice; the first-pass "linear" classification over-extrapolates).
//
// Also prints:
//   * the paper's validation: F_s families and comm shapes on both
//     clusters;
//   * the minimum-energy gear per node count (the paper's SP example:
//     gear 2 on 4 nodes -> gear 4 on 16 nodes);
//   * CG's predicted 32-node speedup < 1 (the curve the paper omits);
//   * model-vs-direct-simulation errors on a hypothetical 32-node
//     power-scalable cluster — a check the paper could not run.
#include <iostream>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include <string>

#include "cluster/experiment.hpp"
#include "harness.hpp"
#include "net/topology.hpp"
#include "report/figures.hpp"
#include "model/pipeline.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"
#include "workloads/synthetic.hpp"

using namespace gearsim;

namespace {

std::optional<ScalingShape> paper_shape(const std::string& name) {
  if (name == "CG") return ScalingShape::kQuadratic;
  // LU was first classified linear; the paper's validation found constant
  // fits its traces best ("each node sends more messages, but the average
  // message size decreases").  We use the validated choice.
  if (name == "LU") return ScalingShape::kConstant;
  return ScalingShape::kLogarithmic;  // BT, EP, MG, SP.
}

int run(bench::BenchContext& ctx) {
  const std::string& svg_dir = ctx.svg_dir();
  cluster::ExperimentRunner athlon(cluster::athlon_cluster());
  cluster::ExperimentRunner sun(cluster::sun_cluster());
  // A hypothetical large power-scalable cluster for direct validation.
  cluster::ClusterConfig big_config = cluster::athlon_cluster();
  big_config.name = "athlon-32 (hypothetical)";
  big_config.max_nodes = 32;
  // A real 32-node build would carry a fabric sized for it; keep the
  // switch at full bisection so the hypothetical machine is not
  // bottlenecked by the 10-node cluster's 12-port switch.
  big_config.network.backplane_bandwidth =
      32 * big_config.network.link_bandwidth;
  cluster::ExperimentRunner big(big_config);

  std::cout << "=== Figure 5: measured (<=9 nodes) + modeled (16/25/32) ===\n\n";

  TextTable validation({"bench", "cluster", "Fs (fit)", "Fs family",
                        "Fs(32) trend +/- se", "comm shape (chosen)",
                        "comm shape (best fit)", "R^2"});
  TextTable min_gear({"bench", "nodes", "min-energy gear", "source"});
  RunningStats time_err;
  RunningStats energy_err;

  for (const auto& entry : workloads::nas_suite()) {
    const auto workload = entry.make();

    model::ScalingModel::Options opts;
    opts.primary_nodes = workloads::paper_node_counts(*workload, 9);
    opts.validation_nodes = workloads::paper_node_counts(*workload, 32);
    opts.comm_shape = paper_shape(entry.name);
    const model::ScalingModel scaling =
        model::ScalingModel::build(athlon, sun, *workload, opts);
    const model::ScalingReport& rep = scaling.report();

    std::cout << "--- " << entry.name << " ---\n";
    TextTable table({"nodes", "source", "gear", "time [s]", "energy [kJ]"});
    std::vector<model::Curve> figure_curves;

    // Actual runs on <= 9 nodes (skip 1: the paper plots 2+).
    for (const auto& sample : rep.primary) {
      if (sample.nodes < 2) continue;
      const auto runs = athlon.gear_sweep(*workload, sample.nodes);
      const model::Curve curve = model::curve_from_runs(runs);
      figure_curves.push_back(curve);
      bool first = true;
      for (const auto& p : curve.points) {
        table.add_row({first ? std::to_string(sample.nodes) : "",
                       first ? "actual" : "", std::to_string(p.gear_label),
                       fmt_fixed(p.time.value(), 1),
                       fmt_fixed(p.energy.value() / 1e3, 1)});
        first = false;
      }
      table.add_rule();
      min_gear.add_row(
          {entry.name, std::to_string(sample.nodes),
           std::to_string(
               curve.points[model::min_energy_index(curve)].gear_label),
           "actual"});
    }

    // Model predictions for 16, 25, 32.
    const Seconds t1 = rep.primary.front().wall;
    for (int m : {16, 25, 32}) {
      const model::Curve curve = scaling.predicted_curve(m);
      const double speedup = t1 / curve.fastest().time;
      if (speedup < 1.0) {
        std::cout << "  (predicted speedup on " << m << " nodes is "
                  << fmt_fixed(speedup, 2)
                  << " < 1; curve omitted as in the paper)\n";
        continue;
      }
      figure_curves.push_back(curve);
      bool first = true;
      for (const auto& p : curve.points) {
        table.add_row({first ? std::to_string(m) : "", first ? "model" : "",
                       std::to_string(p.gear_label),
                       fmt_fixed(p.time.value(), 1),
                       fmt_fixed(p.energy.value() / 1e3, 1)});
        first = false;
      }
      table.add_rule();
      min_gear.add_row(
          {entry.name, std::to_string(m),
           std::to_string(
               curve.points[model::min_energy_index(curve)].gear_label),
           "model"});
    }
    std::cout << table.to_string() << '\n';
    if (!svg_dir.empty()) {
      report::energy_time_figure(
          "Figure 5: " + entry.name + " (16+ nodes modeled)", figure_curves)
          .write(svg_dir + "/fig5_" + entry.name + ".svg");
    }

    // Cross-cluster validation rows (paper Section 4.1 "Validation").
    auto family = [](const std::vector<double>& fs) {
      std::string s;
      for (double f : fs) {
        if (!s.empty()) s += ' ';
        s += fmt_fixed(f, 3);
      }
      return s;
    };
    // Extrapolated F_s with its OLS coefficient uncertainty: how much
    // statistical slack Step 3 really has at 32 nodes.
    const std::string fs32 =
        fmt_fixed(rep.fs_trend.at(32.0), 4) + " +/- " +
        fmt_fixed(rep.fs_trend.prediction_stderr(32.0), 4);
    validation.add_row({entry.name, "athlon",
                        fmt_fixed(rep.amdahl_primary.serial_fraction, 3),
                        family(rep.fs_family_primary), fs32,
                        to_string(rep.comm_primary.shape()),
                        to_string(rep.comm_primary.shape()),
                        fmt_fixed(rep.amdahl_primary.r_squared, 3)});
    validation.add_row({entry.name, "sun",
                        fmt_fixed(rep.amdahl_validation.serial_fraction, 3),
                        family(rep.fs_family_validation), "",
                        to_string(rep.comm_primary.shape()),
                        to_string(rep.comm_validation.shape()),
                        fmt_fixed(rep.amdahl_validation.r_squared, 3)});

    // Our addition: direct simulation of the large power-scalable cluster
    // vs the model (every gear at 16 and 32 or 16 and 25 nodes).
    const std::vector<int> direct_nodes =
        (entry.name == "BT" || entry.name == "SP")
            ? std::vector<int>{16, 25}
            : std::vector<int>{16, 32};
    for (const auto& v :
         model::validate_against_direct(scaling, big, *workload, direct_nodes)) {
      time_err.add(std::abs(v.time_error));
      energy_err.add(std::abs(v.energy_error));
    }
  }

  std::cout << "=== Validation: F_p/F_s and comm shapes across clusters ===\n"
            << validation.to_string() << '\n';
  std::cout << "=== Minimum-energy gear per node count ===\n"
            << "(the paper's SP example: gear 2 at 4 nodes shifts to gear 4"
               " at 16 nodes)\n"
            << min_gear.to_string() << '\n';
  std::cout << "=== Model vs direct simulation (16-32 nodes, all gears) ===\n"
            << "mean |time error|   = " << fmt_percent(time_err.mean(), 1)
            << "  (max " << fmt_percent(time_err.max(), 1) << ")\n"
            << "mean |energy error| = " << fmt_percent(energy_err.mean(), 1)
            << "  (max " << fmt_percent(energy_err.max(), 1) << ")\n";
  // Topology scaling sweep: the SHIFT congestion probe (see
  // workloads/synthetic.hpp and docs/NETWORK.md) from 256 to 2048 ranks.
  // The slack baseline at each scale is the non-blocking fat tree — same
  // routing and fair-share model, zero oversubscription — so the slack
  // column isolates link contention.  The contended fabrics keep their
  // shape as they grow (fat trees 2:1 oversubscribed at the spine, tori
  // square-ish), showing how congestion-induced slack grows with scale —
  // the regime the paper's 10-node cluster never reached.  The flat
  // crossbar rows are context only (different serialization model).
  {
    std::cout << "=== Topology scaling: SHIFT probe, 256-2048 ranks ===\n";
    const workloads::ShiftExchange probe;
    struct ScaleCase {
      int ranks;
      const char* full_tree;
      const char* fat_tree;
      const char* torus;
    };
    const std::vector<ScaleCase> scales = {
        {256, "fat-tree:16,16:1,1:1,16", "fat-tree:16,16:1,2:1,4",
         "torus:16x16"},
        {1024, "fat-tree:32,32:1,1:1,32", "fat-tree:32,32:1,2:1,8",
         "torus:32x32"},
        {2048, "fat-tree:32,64:1,1:1,32", "fat-tree:32,64:1,2:1,8",
         "torus:32x64"},
    };
    TextTable topo({"ranks", "fabric", "time [s]", "idle share",
                    "congestion slack"});
    for (const auto& scale : scales) {
      double base_wall = 0.0;
      const std::vector<std::pair<std::string, std::string>> fabrics = {
          {"fat_tree_full", scale.full_tree},
          {"flat", "flat"},
          {"fat_tree", scale.fat_tree},
          {"torus", scale.torus},
      };
      bool first = true;
      for (const auto& [key, spec] : fabrics) {
        cluster::ClusterConfig config = cluster::athlon_cluster();
        config.max_nodes = scale.ranks;
        config.network.backplane_bandwidth =
            scale.ranks * config.network.link_bandwidth;
        cluster::install_topology(&config, net::parse_topology(spec));
        const cluster::ExperimentRunner topo_runner(config);
        const cluster::RunResult r =
            topo_runner.run(probe, scale.ranks, cluster::RunOptions{});
        if (key == "fat_tree_full") base_wall = r.wall.value();
        const double idle_share = r.idle_energy / r.energy;
        const double slack = r.wall.value() / base_wall - 1.0;
        topo.add_row({first ? std::to_string(scale.ranks) : "", key,
                      fmt_fixed(r.wall.value(), 2), fmt_percent(idle_share),
                      key == "fat_tree_full" ? "-" : fmt_percent(slack)});
        first = false;
        const std::string stem =
            "topo.scale" + std::to_string(scale.ranks) + "." + key;
        ctx.metric(stem + ".time", r.wall.value());
        if (key != "fat_tree_full") ctx.metric(stem + ".slack", slack);
      }
      topo.add_rule();
    }
    std::cout << topo.to_string() << '\n';
  }

  ctx.metric("model.time_error.mean", time_err.mean());
  ctx.metric("model.time_error.max", time_err.max());
  ctx.metric("model.energy_error.mean", energy_err.mean());
  ctx.metric("model.energy_error.max", energy_err.max());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "fig5_model_scaling", run);
}
