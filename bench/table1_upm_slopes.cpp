// Table 1 — Predicting the energy-time tradeoff.
//
// For each NAS benchmark: UPM (micro-ops per L2 miss) and the slopes of
// the single-node energy-time curve between gears 1->2 and 2->3, computed
// exactly as the paper does: (E_2 - E_1) / (T_2 - T_1).  Rows are sorted
// by descending UPM; the paper's claim is that this ordering predicts the
// slope ordering (more memory pressure => more negative slope => better
// tradeoff).  The paper's own measured values are printed alongside.
#include <iostream>
#include <map>

#include "cluster/experiment.hpp"
#include "harness.hpp"
#include "model/tradeoff.hpp"
#include "util/table.hpp"
#include "workloads/nas.hpp"
#include "workloads/registry.hpp"

using namespace gearsim;

namespace {

int run(bench::BenchContext& ctx) {
  cluster::ExperimentRunner runner(cluster::athlon_cluster());

  // The paper's Table 1, for side-by-side comparison.
  const std::map<std::string, std::array<double, 3>> paper = {
      {"EP", {844.0, -0.189, 0.288}}, {"BT", {79.6, -0.811, 0.0510}},
      {"LU", {73.5, -1.78, -0.355}},  {"MG", {70.6, -1.11, -0.161}},
      {"SP", {49.5, -5.49, -1.52}},   {"CG", {8.60, -11.7, -1.69}},
  };

  std::vector<model::TradeoffSummary> rows;
  TextTable table({"bench", "UPM", "slope 1->2 [kJ/s]", "slope 2->3 [kJ/s]",
                   "paper 1->2", "paper 2->3"});
  for (const auto& entry : workloads::nas_suite()) {
    const auto workload = entry.make();
    const auto* nas = dynamic_cast<const workloads::NasSkeleton*>(workload.get());
    const model::Curve curve =
        model::curve_from_runs(runner.gear_sweep(*workload, 1));
    model::TradeoffSummary row;
    row.name = entry.name;
    row.upm = nas->params().upm;
    // Slopes in kJ/s so magnitudes are comparable with the paper's table.
    row.slope_1_2 =
        model::slope_between(curve.points[0], curve.points[1]) / 1e3;
    row.slope_2_3 =
        model::slope_between(curve.points[1], curve.points[2]) / 1e3;
    rows.push_back(row);
    const auto& p = paper.at(entry.name);
    table.add_row({row.name, fmt_fixed(row.upm, 1), fmt_fixed(row.slope_1_2, 3),
                   fmt_fixed(row.slope_2_3, 3), fmt_fixed(p[1], 3),
                   fmt_fixed(p[2], 3)});
    ctx.metric(entry.name + ".slope_1_2", row.slope_1_2);
    ctx.metric(entry.name + ".slope_2_3", row.slope_2_3);
  }

  std::cout << "=== Table 1: UPM predicts the energy-time tradeoff ===\n"
            << table.to_string() << '\n';

  const double concordance = model::upm_slope_concordance(rows);
  std::cout << "UPM/slope(1->2) ordering concordance: "
            << fmt_percent(concordance - 0.0, 0)
            << " of pairs sorted consistently"
            << (concordance == 1.0 ? " (perfectly sorted, as the paper's"
                                     " claim requires modulo its MG outlier)"
                                   : "")
            << '\n';
  ctx.metric("concordance", concordance);
  return concordance >= 0.8 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "table1_upm_slopes", run);
}
