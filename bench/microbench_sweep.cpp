// Microbenchmark: serial vs parallel vs cache-warm sweep throughput.
//
// Runs one realistic sweep — NAS CG, every gear of the Athlon cluster at
// 1/2/4/8/16 nodes (30 points) — three ways:
//
//   serial     SweepRunner, jobs=1, no cache
//   parallel   SweepRunner, jobs=hardware_concurrency, no cache
//   warm       SweepRunner, jobs=hardware, cache pre-filled by `parallel`
//
// verifies all three are bit-identical (to_json fingerprints), and writes
// the timings to the wall section of BENCH_microbench_sweep.json (pass
// `--json PATH`).  The recorded `cores` field is the honest
// hardware_concurrency of the machine that produced the numbers: on a
// single-core box `parallel` cannot beat `serial`, and the JSON says so
// rather than pretending.
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "cluster/experiment.hpp"
#include "exec/result_cache.hpp"
#include "exec/result_io.hpp"
#include "exec/sweep_runner.hpp"
#include "harness.hpp"
#include "workloads/nas.hpp"

using namespace gearsim;

namespace {

double time_sweep(const exec::SweepRunner& runner,
                  const std::vector<exec::SweepPoint>& points,
                  std::vector<std::string>* fingerprints) {
  const auto start = std::chrono::steady_clock::now();
  const auto results = runner.run(points);
  const auto stop = std::chrono::steady_clock::now();
  fingerprints->clear();
  for (const auto& r : results) fingerprints->push_back(exec::to_json(r));
  return std::chrono::duration<double>(stop - start).count();
}

std::string jnum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

int run(bench::BenchContext& ctx) {
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());

  cluster::ClusterConfig config = cluster::athlon_cluster();
  config.max_nodes = 16;  // Paper machine tops out at 10; stretch the grid.

  const workloads::NasCg cg;
  std::vector<exec::SweepPoint> points;
  for (int nodes : {1, 2, 4, 8, 16}) {
    for (std::size_t g = 0; g < config.gears.size(); ++g) {
      points.push_back(exec::SweepPoint{&cg, nodes, g, 0});
    }
  }
  std::cout << "sweep: CG, " << points.size() << " points, " << cores
            << " hardware thread(s)\n";

  std::vector<std::string> serial_fp, parallel_fp, warm_fp;

  exec::SweepOptions serial_options;
  serial_options.jobs = 1;
  const exec::SweepRunner serial(config, serial_options);
  const double t_serial = time_sweep(serial, points, &serial_fp);
  std::cout << "serial   (jobs=1):      " << jnum(t_serial) << " s\n";

  exec::ResultCache cache;
  exec::SweepOptions parallel_options;
  parallel_options.jobs = static_cast<int>(cores);
  parallel_options.cache = &cache;
  const exec::SweepRunner parallel(config, parallel_options);
  const double t_parallel = time_sweep(parallel, points, &parallel_fp);
  std::cout << "parallel (jobs=" << cores << "):      " << jnum(t_parallel)
            << " s\n";

  const double t_warm = time_sweep(parallel, points, &warm_fp);
  std::cout << "warm cache:             " << jnum(t_warm) << " s ("
            << cache.stats().hits << " hits)\n";

  if (serial_fp != parallel_fp || serial_fp != warm_fp) {
    std::cerr << "FAIL: sweep results are not bit-identical across modes\n";
    return 1;
  }
  std::cout << "bit-identity: OK (all " << points.size()
            << " points byte-equal across serial/parallel/warm)\n";

  const double parallel_speedup = t_serial / t_parallel;
  const double warm_speedup = t_serial / t_warm;
  ctx.info("workload", "CG");
  ctx.metric("points", static_cast<double>(points.size()));
  ctx.metric("bit_identical", 1.0);
  ctx.wall_metric("cores", static_cast<double>(cores));
  ctx.wall_metric("serial_s", t_serial);
  ctx.wall_metric("parallel_s", t_parallel);
  ctx.wall_metric("warm_cache_s", t_warm);
  ctx.wall_metric("parallel_speedup", parallel_speedup);
  ctx.wall_metric("warm_cache_speedup", warm_speedup);
  std::cout << "parallel speedup " << jnum(parallel_speedup)
            << "x, warm-cache speedup " << jnum(warm_speedup) << "x\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "microbench_sweep", run);
}
