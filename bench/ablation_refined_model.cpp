// Ablation — naive vs refined (critical/reducible) prediction model.
//
// DESIGN.md calls out the refined model's critical/reducible split as the
// paper's key modeling refinement.  This harness quantifies what it buys:
// for every NAS benchmark, build the Section-4 model twice (naive and
// refined) and compare both against direct simulation on 16-32 nodes at
// every gear.  The refined model should never be worse on time, and
// matters most for send-heavy codes with real slack (LU's wavefronts).
#include <iostream>

#include "cluster/experiment.hpp"
#include "harness.hpp"
#include "model/pipeline.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

using namespace gearsim;

namespace {

int run(bench::BenchContext& ctx) {
  cluster::ExperimentRunner athlon(cluster::athlon_cluster());
  cluster::ExperimentRunner sun(cluster::sun_cluster());
  cluster::ClusterConfig big_config = cluster::athlon_cluster();
  big_config.max_nodes = 32;
  // A real 32-node build would carry a fabric sized for it; keep the
  // switch at full bisection so the hypothetical machine is not
  // bottlenecked by the 10-node cluster's 12-port switch.
  big_config.network.backplane_bandwidth =
      32 * big_config.network.link_bandwidth;
  cluster::ExperimentRunner big(big_config);

  std::cout << "=== Ablation: naive vs refined prediction model ===\n\n";

  TextTable table({"bench", "reducible frac", "naive |dT|", "refined |dT|",
                   "naive |dE|", "refined |dE|"});
  RunningStats naive_total;
  RunningStats refined_total;

  for (const auto& entry : workloads::nas_suite()) {
    const auto workload = entry.make();
    model::ScalingModel::Options opts;
    opts.primary_nodes = workloads::paper_node_counts(*workload, 9);
    opts.validation_nodes = workloads::paper_node_counts(*workload, 32);
    // Same shape choices as the Figure-5 harness (paper Section 4.1,
    // including the validated constant for LU).
    if (entry.name == "CG") {
      opts.comm_shape = ScalingShape::kQuadratic;
    } else if (entry.name == "LU") {
      opts.comm_shape = ScalingShape::kConstant;
    } else {
      opts.comm_shape = ScalingShape::kLogarithmic;
    }

    opts.refined = false;
    const auto naive = model::ScalingModel::build(athlon, sun, *workload, opts);
    opts.refined = true;
    const auto refined =
        model::ScalingModel::build(athlon, sun, *workload, opts);

    const std::vector<int> nodes =
        (entry.name == "BT" || entry.name == "SP") ? std::vector<int>{16, 25}
                                                   : std::vector<int>{16, 32};
    RunningStats nt, rt, ne, re;
    for (const auto& v :
         model::validate_against_direct(naive, big, *workload, nodes)) {
      nt.add(std::abs(v.time_error));
      ne.add(std::abs(v.energy_error));
      naive_total.add(std::abs(v.time_error));
    }
    for (const auto& v :
         model::validate_against_direct(refined, big, *workload, nodes)) {
      rt.add(std::abs(v.time_error));
      re.add(std::abs(v.energy_error));
      refined_total.add(std::abs(v.time_error));
    }
    table.add_row({entry.name,
                   fmt_fixed(refined.report().reducible_fraction, 3),
                   fmt_percent(nt.mean(), 1), fmt_percent(rt.mean(), 1),
                   fmt_percent(ne.mean(), 1), fmt_percent(re.mean(), 1)});
  }

  std::cout << table.to_string() << '\n'
            << "overall mean |time error|: naive "
            << fmt_percent(naive_total.mean(), 1) << ", refined "
            << fmt_percent(refined_total.mean(), 1) << '\n';
  ctx.metric("naive.time_error.mean", naive_total.mean());
  ctx.metric("refined.time_error.mean", refined_total.mean());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "ablation_refined_model", run);
}
