// Figure 1 — Energy consumption vs execution time for the NAS benchmarks
// on a single (simulated) Athlon-64 node, at all six gears.
//
// Regenerates the series of the paper's Figure 1: for each benchmark, one
// (time, energy) point per gear, plus the relative axes (deltas vs the
// fastest gear).  Also asserts the paper's slowdown bound
// 1 <= T_{i+1}/T_i <= f_i/f_{i+1} on every adjacent gear pair, and prints
// the headline comparisons (CG gear 2 / gear 5, EP gear 2).
#include <iostream>

#include <string>

#include "cluster/experiment.hpp"
#include "harness.hpp"
#include "report/figures.hpp"
#include "model/tradeoff.hpp"
#include "util/table.hpp"
#include "workloads/characterize.hpp"
#include "workloads/nas.hpp"
#include "workloads/registry.hpp"

using namespace gearsim;

namespace {

int run(bench::BenchContext& ctx) {
  const std::string& svg_dir = ctx.svg_dir();
  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  const auto& gears = runner.config().gears;

  std::cout << "=== Figure 1: energy vs time, 1 node, gears 1-6 ===\n"
            << "(simulated Athlon-64: 2000/1800/1600/1400/1200/800 MHz)\n\n";

  bool bound_ok = true;
  for (const auto& entry : workloads::nas_suite()) {
    const auto workload = entry.make();
    const auto runs = runner.gear_sweep(*workload, 1);
    const model::Curve curve = model::curve_from_runs(runs);
    const auto rel = model::relative_to_fastest(curve);

    TextTable table({"gear", "MHz", "time [s]", "energy [kJ]", "time vs g1",
                     "energy vs g1"});
    for (std::size_t g = 0; g < curve.points.size(); ++g) {
      const auto& p = curve.points[g];
      table.add_row(
          {std::to_string(p.gear_label),
           fmt_fixed(gears.gear(g).frequency.value() / 1e6, 0),
           fmt_fixed(p.time.value(), 1), fmt_fixed(p.energy.value() / 1e3, 2),
           fmt_percent(rel[g].time_delta), fmt_percent(rel[g].energy_delta)});
    }
    std::cout << "--- " << entry.name << " ---\n" << table.to_string();
    if (!svg_dir.empty()) {
      report::energy_time_figure("Figure 1: " + entry.name + " (1 node)",
                                 {curve})
          .write(svg_dir + "/fig1_" + entry.name + ".svg");
    }

    // Paper bound: 1 <= T_{i+1}/T_i <= f_i/f_{i+1}.
    for (std::size_t g = 1; g < curve.points.size(); ++g) {
      const double ratio = curve.points[g].time / curve.points[g - 1].time;
      const double cap =
          gears.gear(g - 1).frequency / gears.gear(g).frequency;
      if (ratio < 1.0 - 1e-9 || ratio > cap + 1e-9) {
        std::cout << "  !! bound violated at gear " << g + 1 << ": ratio "
                  << ratio << " not in [1, " << cap << "]\n";
        bound_ok = false;
      }
    }
    std::cout << '\n';
  }
  std::cout << "Slowdown bound 1 <= T_{i+1}/T_i <= f_i/f_{i+1}: "
            << (bound_ok ? "holds for all benchmarks and gears" : "VIOLATED")
            << "\n\n";

  // Section 3.1's microarchitectural observation: "In memory-bound
  // applications, the UPC increases as frequency decreases" (memory
  // latency shrinks when expressed in longer CPU cycles).
  {
    const cpu::CpuModel cpu_model(runner.config().cpu, gears);
    TextTable upc({"bench", "UPM", "UPC @ gear 1", "UPC @ gear 6",
                   "change"});
    for (const auto& entry : workloads::nas_suite()) {
      const auto w = entry.make();
      const auto* nas = dynamic_cast<const workloads::NasSkeleton*>(w.get());
      const cpu::ComputeBlock block = workloads::block_for_time(
          cpu_model, nas->params().upm, seconds(1.0), nas->params().overlap);
      const double upc1 = cpu_model.observed_upc(block, 0);
      const double upc6 = cpu_model.observed_upc(block, 5);
      upc.add_row({entry.name, fmt_fixed(nas->params().upm, 1),
                   fmt_fixed(upc1, 3), fmt_fixed(upc6, 3),
                   fmt_percent(upc6 / upc1 - 1.0)});
    }
    std::cout << "=== Observed UPC vs gear (memory-bound codes gain) ===\n"
              << upc.to_string() << '\n';
  }

  // Headline numbers of Section 3.1.
  {
    const auto cg = workloads::make_workload("CG");
    const auto ep = workloads::make_workload("EP");
    const auto cg_rel =
        model::relative_to_fastest(model::curve_from_runs(runner.gear_sweep(*cg, 1)));
    const auto ep_rel =
        model::relative_to_fastest(model::curve_from_runs(runner.gear_sweep(*ep, 1)));
    ctx.metric("cg.gear2.energy_delta", cg_rel[1].energy_delta);
    ctx.metric("cg.gear2.time_delta", cg_rel[1].time_delta);
    ctx.metric("cg.gear5.energy_delta", cg_rel[4].energy_delta);
    ctx.metric("cg.gear5.time_delta", cg_rel[4].time_delta);
    ctx.metric("ep.gear2.energy_delta", ep_rel[1].energy_delta);
    ctx.metric("ep.gear2.time_delta", ep_rel[1].time_delta);
    TextTable headline({"claim", "paper", "measured"});
    headline.add_row({"CG gear 2 energy", "-9.5%", fmt_percent(cg_rel[1].energy_delta)});
    headline.add_row({"CG gear 2 delay", "<+1%", fmt_percent(cg_rel[1].time_delta)});
    headline.add_row({"CG gear 5 energy", "-20%", fmt_percent(cg_rel[4].energy_delta)});
    headline.add_row({"CG gear 5 delay", "~+10%", fmt_percent(cg_rel[4].time_delta)});
    headline.add_row({"EP gear 2 energy", "-2%", fmt_percent(ep_rel[1].energy_delta)});
    headline.add_row({"EP gear 2 delay", "+11%", fmt_percent(ep_rel[1].time_delta)});
    std::cout << "=== Section 3.1 headline comparisons ===\n"
              << headline.to_string();
  }
  ctx.metric("bound_ok", bound_ok ? 1.0 : 0.0);
  return bound_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "fig1_single_node", run);
}
