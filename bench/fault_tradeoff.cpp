// Fault tradeoff — how failures move the energy-optimal gear.
//
// The paper picks its energy gear on a healthy cluster.  On an unreliable
// one, every extra second of wall time is another second exposed to
// failure, and every failure costs a restart plus re-execution — so slow
// gears pay a resilience tax proportional to how long they stretch the
// run.  This bench quantifies that: for a memory-bound code (CG, where
// slowing down is nearly free) and a CPU-bound one (EP, where it is not),
// it sweeps the per-node failure rate and reports the expected
// checkpoint/restart-adjusted energy of every gear.
//
// Expected result: the energy-optimal gear index is monotonically
// non-increasing in the failure rate — the flakier the cluster, the
// faster you should run.  The bench exits non-zero if that ever fails.
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/experiment.hpp"
#include "faults/restart_model.hpp"
#include "harness.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

using namespace gearsim;

namespace {

struct GearPoint {
  int label = 0;
  Seconds wall{};
  Joules energy{};
};

// Per-node failures/second sweep: healthy cluster up to roughly one
// failure per node every 100 seconds.
const double kRates[] = {0.0, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2};

bool bench_workload(bench::BenchContext& ctx, const std::string& name,
                    int nodes, const faults::CheckpointConfig& ckpt) {
  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  const auto workload = workloads::make_workload(name);

  // One solid (fault-free) measurement per gear; the expected-value
  // restart model then composes failures on top analytically.
  std::vector<GearPoint> gears;
  for (const auto& run : runner.gear_sweep(*workload, nodes)) {
    gears.push_back(GearPoint{run.gear_label, run.wall, run.energy});
  }

  std::cout << "--- " << name << " on " << nodes << " nodes (checkpoint every "
            << ckpt.interval.value() << " s, restart " << ckpt.restart_time.value()
            << " s) ---\n";
  TextTable table({"rate [/node/s]", "E(g1) [kJ]", "E(g2)", "E(g3)", "E(g4)",
                   "E(g5)", "E(g6)", "best gear", "E[restarts]"});

  bool monotone = true;
  int prev_best = gears.back().label + 1;
  for (const double rate : kRates) {
    const double cluster_rate = rate * static_cast<double>(nodes);
    std::vector<std::string> row{fmt_fixed(rate, 4)};
    int best_label = 0;
    double best_energy = 0.0;
    double best_restarts = 0.0;
    for (const auto& g : gears) {
      const faults::EnergyProfile profile =
          faults::EnergyProfile::flat(g.energy / g.wall, g.wall);
      const faults::RestartStats stats = faults::expected_restarts(
          g.wall, profile, static_cast<std::size_t>(nodes), ckpt,
          cluster_rate);
      row.push_back(fmt_fixed(stats.energy.value() / 1e3, 2));
      if (best_label == 0 || stats.energy.value() < best_energy) {
        best_label = g.label;
        best_energy = stats.energy.value();
        best_restarts = stats.expected_failures;
      }
    }
    row.push_back(std::to_string(best_label));
    row.push_back(fmt_fixed(best_restarts, 2));
    table.add_row(row);
    ctx.metric(name + ".rate" + fmt_fixed(rate, 4) + ".best_gear",
               static_cast<double>(best_label));
    if (best_label > prev_best) monotone = false;
    prev_best = best_label;
  }
  std::cout << table.to_string();
  std::cout << (monotone
                    ? "optimal gear is monotone non-increasing in the rate: OK"
                    : "MONOTONICITY VIOLATION: optimal gear moved slower "
                      "under a higher failure rate")
            << "\n\n";
  return monotone;
}

int run(bench::BenchContext& ctx) {
  std::cout << "=== Fault tradeoff: failure rate vs energy-optimal gear ===\n\n";
  faults::CheckpointConfig ckpt;
  ckpt.interval = seconds(5.0);
  ckpt.write_time = seconds(0.5);
  ckpt.write_power = watts(120.0);
  ckpt.restart_time = seconds(60.0);
  ckpt.restart_power = watts(85.0);
  ckpt.max_restarts = 1 << 20;

  bool ok = true;
  // CG is memory-bound (wide gear latitude); EP is CPU-bound (little).
  ok &= bench_workload(ctx, "CG", 4, ckpt);
  ok &= bench_workload(ctx, "EP", 4, ckpt);

  std::cout << (ok ? "PASS" : "FAIL")
            << ": energy-optimal gear shifts toward faster gears as the "
               "failure rate rises.\n";
  ctx.metric("monotone", ok ? 1.0 : 0.0);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "fault_tradeoff", run);
}
