// Figure 3 — Energy vs time for the hand-written Jacobi iteration on
// 2, 4, 6, 8, and 10 nodes (it runs on any node count, unlike NAS).
//
// The paper reports speedups of ~1.9 / 3.6 / 5.0 / 6.4 / 7.7, which makes
// every adjacent pair of curves a case-3 pair: e.g. second or third gear
// on 6 nodes finishes faster AND uses less energy than first gear on 4.
#include <iostream>

#include <string>

#include "cluster/experiment.hpp"
#include "harness.hpp"
#include "report/figures.hpp"
#include "model/tradeoff.hpp"
#include "util/table.hpp"
#include "workloads/jacobi.hpp"

using namespace gearsim;

namespace {

int run(bench::BenchContext& ctx) {
  const std::string& svg_dir = ctx.svg_dir();
  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  const workloads::Jacobi jacobi;

  std::cout << "=== Figure 3: Jacobi iteration on 2/4/6/8/10 nodes ===\n\n";

  const cluster::RunResult one = runner.run(jacobi, 1, 0);
  const double paper_speedups[] = {1.9, 3.6, 5.0, 6.4, 7.7};

  std::vector<model::Curve> curves;
  TextTable table({"nodes", "gear", "time [s]", "energy [kJ]"});
  TextTable sp({"nodes", "speedup", "paper"});
  int i = 0;
  for (int n : {2, 4, 6, 8, 10}) {
    const auto runs = runner.gear_sweep(jacobi, n);
    curves.push_back(model::curve_from_runs(runs));
    bool first = true;
    for (const auto& p : curves.back().points) {
      table.add_row({first ? std::to_string(n) : "",
                     std::to_string(p.gear_label),
                     fmt_fixed(p.time.value(), 1),
                     fmt_fixed(p.energy.value() / 1e3, 2)});
      first = false;
    }
    table.add_rule();
    sp.add_row({std::to_string(n),
                fmt_fixed(one.wall / curves.back().fastest().time, 2),
                fmt_fixed(paper_speedups[i++], 1)});
  }
  std::cout << table.to_string() << "\nSpeedups vs 1 node:\n" << sp.to_string();
  if (!svg_dir.empty()) {
    report::energy_time_figure("Figure 3: Jacobi iteration", curves)
        .write(svg_dir + "/fig3_jacobi.svg");
  }

  std::cout << "\nAdjacent-curve transitions (the paper: every pair is"
               " case 3):\n";
  bool all_case3 = true;
  for (std::size_t k = 1; k < curves.size(); ++k) {
    const auto c = model::classify_transition(curves[k - 1], curves[k]);
    std::cout << "  " << curves[k - 1].nodes << " -> " << curves[k].nodes
              << " nodes: " << model::to_string(c) << '\n';
    if (c != model::SpeedupCase::kGoodSpeedup) all_case3 = false;
  }

  // The paper's concrete example: gear 2 or 3 on 6 nodes dominates gear 1
  // on 4 nodes in both time and energy.
  const auto& g1on4 = curves[1].at_gear(1);
  const auto& g2on6 = curves[2].at_gear(2);
  const auto& g3on6 = curves[2].at_gear(3);
  const bool example =
      (g2on6.time <= g1on4.time && g2on6.energy <= g1on4.energy) ||
      (g3on6.time <= g1on4.time && g3on6.energy <= g1on4.energy);
  std::cout << "\nGear 2/3 on 6 nodes dominates gear 1 on 4 nodes: "
            << (example ? "yes (as in the paper)" : "NO") << '\n';
  ctx.metric("speedup_10_nodes", one.wall / curves.back().fastest().time);
  ctx.metric("all_case3", all_case3 ? 1.0 : 0.0);
  ctx.metric("dominating_example", example ? 1.0 : 0.0);
  ctx.metric("gear1at4.time_s", g1on4.time.value());
  ctx.metric("gear2at6.energy_j", g2on6.energy.value());
  return (all_case3 && example) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "fig3_jacobi", run);
}
