file(REMOVE_RECURSE
  "CMakeFiles/gearsim_util.dir/log.cpp.o"
  "CMakeFiles/gearsim_util.dir/log.cpp.o.d"
  "CMakeFiles/gearsim_util.dir/statistics.cpp.o"
  "CMakeFiles/gearsim_util.dir/statistics.cpp.o.d"
  "CMakeFiles/gearsim_util.dir/table.cpp.o"
  "CMakeFiles/gearsim_util.dir/table.cpp.o.d"
  "libgearsim_util.a"
  "libgearsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gearsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
