# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/dvfs_test[1]_include.cmake")
include("/root/repo/build/tests/nas_extra_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/analytic_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_stress_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/knobs_test[1]_include.cmake")
include("/root/repo/build/tests/patterns_test[1]_include.cmake")
