#!/bin/sh
# A mixed-policy batch queue for `gearsim sched` (and the CI smoke leg).
# LoadLeveler `#@ keyword = value` stanzas, one job per `#@ queue`; the
# shell payload below each stanza is ignored by the parser, exactly as a
# real LoadLeveler script would carry the mpirun invocation.  Grammar:
# docs/SCHEDULER.md.
#@ job_name = cg-wide
#@ job_type = parallel
#@ workload = CG
#@ total_tasks = 8
#@ wall_clock_limit = 01:00:00
#@ minimize_time_to_solution = yes
#@ queue
mpirun -np 8 ./cg.B.8

#@ job_name = lu-thrifty
#@ job_type = parallel
#@ workload = LU
#@ total_tasks = 4
#@ minimize_energy_to_solution = yes
#@ queue
mpirun -np 4 ./lu.B.4

#@ job_name = ep-filler
#@ workload = EP
#@ total_tasks = 2
#@ arrival = 60
#@ queue
mpirun -np 2 ./ep.B.2

#@ job_name = cg-late
#@ workload = CG
#@ total_tasks = 4
#@ arrival = 120
#@ minimize_energy_to_solution = yes
#@ queue
mpirun -np 4 ./cg.B.4
