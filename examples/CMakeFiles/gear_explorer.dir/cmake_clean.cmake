file(REMOVE_RECURSE
  "CMakeFiles/gear_explorer.dir/gear_explorer.cpp.o"
  "CMakeFiles/gear_explorer.dir/gear_explorer.cpp.o.d"
  "gear_explorer"
  "gear_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gear_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
