# Empty compiler generated dependencies file for gear_explorer.
# This may be replaced when dependencies are built.
