# Empty compiler generated dependencies file for model_extrapolate.
# This may be replaced when dependencies are built.
