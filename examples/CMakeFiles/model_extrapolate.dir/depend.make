# Empty dependencies file for model_extrapolate.
# This may be replaced when dependencies are built.
