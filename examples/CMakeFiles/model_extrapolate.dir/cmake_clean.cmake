file(REMOVE_RECURSE
  "CMakeFiles/model_extrapolate.dir/model_extrapolate.cpp.o"
  "CMakeFiles/model_extrapolate.dir/model_extrapolate.cpp.o.d"
  "model_extrapolate"
  "model_extrapolate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_extrapolate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
