file(REMOVE_RECURSE
  "CMakeFiles/autoshift.dir/autoshift.cpp.o"
  "CMakeFiles/autoshift.dir/autoshift.cpp.o.d"
  "autoshift"
  "autoshift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoshift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
