# Empty dependencies file for autoshift.
# This may be replaced when dependencies are built.
