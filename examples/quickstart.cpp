// Quickstart: run one workload on the paper's power-scalable cluster and
// print its energy-time curve.
//
//   $ quickstart [workload] [nodes]       (defaults: CG 4)
//
// Demonstrates the three core API layers:
//   1. pick a cluster preset (cluster::athlon_cluster),
//   2. run a gear sweep (cluster::ExperimentRunner),
//   3. analyze the curve (model::tradeoff).
#include <iostream>
#include <string>

#include "cluster/experiment.hpp"
#include "model/tradeoff.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace gearsim;

  const std::string name = argc > 1 ? argv[1] : "CG";
  const int nodes = argc > 2 ? std::stoi(argv[2]) : 4;

  const auto workload = workloads::make_workload(name);
  if (!workload->supports(nodes)) {
    std::cerr << name << " does not run on " << nodes << " nodes\n";
    return 1;
  }

  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  std::cout << "Running " << name << " on " << nodes
            << " node(s) of the simulated Athlon-64 cluster, all gears...\n\n";
  const auto runs = runner.gear_sweep(*workload, nodes);
  const model::Curve curve = model::curve_from_runs(runs);
  const auto rel = model::relative_to_fastest(curve);

  TextTable table({"gear", "time [s]", "energy [kJ]", "time vs g1",
                   "energy vs g1", "mean power [W]"});
  for (std::size_t i = 0; i < curve.points.size(); ++i) {
    const auto& p = curve.points[i];
    table.add_row({std::to_string(p.gear_label), fmt_fixed(p.time.value(), 1),
                   fmt_fixed(p.energy.value() / 1000.0, 2),
                   fmt_percent(rel[i].time_delta),
                   fmt_percent(rel[i].energy_delta),
                   fmt_fixed((p.energy / p.time).value(), 1)});
  }
  std::cout << table.to_string() << '\n';

  const std::size_t best = model::min_energy_index(curve);
  std::cout << "Minimum-energy gear: " << curve.points[best].gear_label
            << " (saves " << fmt_percent(-rel[best].energy_delta)
            << " energy for " << fmt_percent(rel[best].time_delta)
            << " extra time vs the fastest gear)\n";
  return 0;
}
