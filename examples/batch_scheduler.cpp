// batch_scheduler — running a job queue through a power-capped rack.
//
//   $ batch_scheduler [cap_watts]          (default: 900)
//
// Profiles a mix of NAS jobs on the simulated cluster, then schedules the
// queue three ways (min-time FIFO, min-energy FIFO, min-time greedy
// backfill) under the cap, comparing makespan, energy, and peak draw —
// the operational payoff of a power-scalable cluster.
#include <iostream>
#include <string>

#include "sched/scheduler.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace gearsim;

  const double cap = argc > 1 ? std::stod(argv[1]) : 900.0;
  cluster::ExperimentRunner runner(cluster::athlon_cluster());

  std::cout << "Profiling workloads on the simulated Athlon-64 cluster...\n";
  const auto cg = workloads::make_workload("CG");
  const auto lu = workloads::make_workload("LU");
  const auto ep = workloads::make_workload("EP");
  const auto mg = workloads::make_workload("MG");
  const sched::WorkloadProfile cg_p =
      sched::WorkloadProfile::measure(runner, *cg, 8);
  const sched::WorkloadProfile lu_p =
      sched::WorkloadProfile::measure(runner, *lu, 8);
  const sched::WorkloadProfile ep_p =
      sched::WorkloadProfile::measure(runner, *ep, 8);
  const sched::WorkloadProfile mg_p =
      sched::WorkloadProfile::measure(runner, *mg, 8);

  const std::vector<sched::Job> queue = {
      {"cg-1", &cg_p}, {"lu-1", &lu_p}, {"ep-1", &ep_p},
      {"mg-1", &mg_p}, {"cg-2", &cg_p}, {"ep-2", &ep_p},
  };
  const sched::Machine rack{10, watts(cap), watts(85.0)};

  std::cout << "Scheduling " << queue.size()
            << " jobs on a 10-node rack capped at " << fmt_fixed(cap, 0)
            << " W\n\n";

  TextTable summary({"policy", "makespan [s]", "job energy [kJ]",
                     "total energy [kJ]", "peak draw [W]"});
  struct Variant {
    const char* name;
    sched::WorkloadProfile::Objective objective;
    sched::QueueDiscipline discipline;
  };
  const Variant variants[] = {
      {"min-time, FIFO", sched::WorkloadProfile::Objective::kMinTime,
       sched::QueueDiscipline::kFifo},
      {"min-energy, FIFO", sched::WorkloadProfile::Objective::kMinEnergy,
       sched::QueueDiscipline::kFifo},
      {"min-time, greedy", sched::WorkloadProfile::Objective::kMinTime,
       sched::QueueDiscipline::kGreedy},
      {"min-EDP, greedy", sched::WorkloadProfile::Objective::kMinEdp,
       sched::QueueDiscipline::kGreedy},
  };

  sched::ScheduleResult best{};
  std::string best_name;
  for (const auto& v : variants) {
    const sched::Scheduler scheduler(rack, v.objective, v.discipline);
    const sched::ScheduleResult r = scheduler.schedule(queue);
    summary.add_row({v.name, fmt_fixed(r.makespan.value(), 1),
                     fmt_fixed(r.job_energy.value() / 1e3, 1),
                     fmt_fixed(r.total_energy().value() / 1e3, 1),
                     fmt_fixed(r.peak_power.value(), 0)});
    if (best_name.empty() || r.makespan < best.makespan) {
      best = r;
      best_name = v.name;
    }
  }
  std::cout << summary.to_string() << '\n';

  std::cout << "Gantt (" << best_name << "):\n";
  TextTable gantt({"job", "nodes", "gear", "start [s]", "end [s]"});
  for (const auto& p : best.placements) {
    gantt.add_row({p.job_id, std::to_string(p.config.nodes),
                   std::to_string(p.config.gear_label),
                   fmt_fixed(p.start.value(), 1),
                   fmt_fixed(p.end.value(), 1)});
  }
  std::cout << gantt.to_string();
  return 0;
}
