// autoshift — the paper's future work, runnable today: automatic DVFS.
//
//   $ autoshift [workload] [nodes]        (default: CG 8)
//
// Compares three ways of running the same program:
//   1. uniform fastest gear (the "performance-at-all-costs" baseline),
//   2. comm-downshift: an MPI runtime that parks a blocked rank at the
//      slowest gear and pays the DVFS transition both ways,
//   3. a node-bottleneck plan: per-rank static gears harvested from a
//      profile run's load imbalance.
#include <iostream>
#include <string>

#include "cluster/dvfs.hpp"
#include "model/gear_data.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace gearsim;

  const std::string name = argc > 1 ? argv[1] : "CG";
  const int nodes = argc > 2 ? std::stoi(argv[2]) : 8;
  const auto workload = workloads::make_workload(name);
  if (!workload->supports(nodes)) {
    std::cerr << name << " does not run on " << nodes << " nodes\n";
    return 1;
  }

  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  const std::size_t slowest = runner.num_gears() - 1;

  // Profile at the fastest gear; plan per-rank gears from its imbalance.
  const cluster::RunResult profile = runner.run(*workload, nodes, 0);
  const model::GearData gear_data = model::measure_gear_data(runner, *workload);
  std::vector<double> ladder;
  for (const auto& g : gear_data.gears) ladder.push_back(g.slowdown);
  const cluster::PerRankGear plan =
      cluster::plan_node_bottleneck(profile, ladder, /*safety=*/0.9);

  cluster::UniformGear baseline(0);
  cluster::CommDownshift downshift(0, slowest);
  cluster::SlackAdaptive adaptive(cluster::SlackAdaptive::Params{}, nodes);
  cluster::PerRankGear planned = plan;  // mutable copy: policies may carry state

  std::cout << "Automatic DVFS for " << name << " on " << nodes
            << " nodes (switch latency "
            << fmt_fixed(runner.config().gear_switch_latency.value() * 1e6, 0)
            << " us)\n\n";

  TextTable table({"policy", "time [s]", "energy [kJ]", "vs baseline time",
                   "vs baseline energy", "switches"});
  for (cluster::GearPolicy* policy :
       {static_cast<cluster::GearPolicy*>(&baseline),
        static_cast<cluster::GearPolicy*>(&downshift),
        static_cast<cluster::GearPolicy*>(&planned),
        static_cast<cluster::GearPolicy*>(&adaptive)}) {
    cluster::RunOptions options;
    options.policy = policy;
    const cluster::RunResult r = runner.run(*workload, nodes, options);
    table.add_row({policy->name(), fmt_fixed(r.wall.value(), 1),
                   fmt_fixed(r.energy.value() / 1e3, 1),
                   fmt_percent(r.wall / profile.wall - 1.0),
                   fmt_percent(r.energy / profile.energy - 1.0),
                   std::to_string(r.gear_switches)});
  }
  std::cout << table.to_string() << '\n';

  std::cout << "Planned per-rank gears:";
  for (int r = 0; r < nodes; ++r) {
    std::cout << " r" << r << "=g" << plan.compute_gear(r) + 1;
  }
  std::cout << "\n(ranks with slack in the profile run get slower gears;"
               " the critical rank stays at gear 1)\n";
  return 0;
}
