// model_extrapolate — "studies like this are needed so that architects
// can make informed decisions before building or purchasing large,
// expensive power-scalable clusters."
//
//   $ model_extrapolate [workload] [target-nodes]   (default: SP 64)
//
// Runs the paper's five-step methodology on the simulated 10-node
// power-scalable cluster plus the 32-node validation cluster, then
// predicts the energy-time curve of a cluster you do NOT own — at any
// node count — and answers the architect's questions: the minimum-energy
// gear, the marginal value of more nodes, and the curve's verticality.
#include <iostream>
#include <string>

#include "model/pipeline.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace gearsim;

  const std::string name = argc > 1 ? argv[1] : "SP";
  const int target = argc > 2 ? std::stoi(argv[2]) : 64;
  const auto workload = workloads::make_workload(name);

  cluster::ExperimentRunner athlon(cluster::athlon_cluster());
  cluster::ExperimentRunner sun(cluster::sun_cluster());

  model::ScalingModel::Options opts;
  opts.primary_nodes = workloads::paper_node_counts(*workload, 9);
  opts.validation_nodes = workloads::paper_node_counts(*workload, 32);
  const model::ScalingModel scaling =
      model::ScalingModel::build(athlon, sun, *workload, opts);
  const model::ScalingReport& rep = scaling.report();

  std::cout << "Five-step model for " << name << ":\n"
            << "  F_s = " << fmt_fixed(rep.amdahl_primary.serial_fraction, 4)
            << " (validation cluster: "
            << fmt_fixed(rep.amdahl_validation.serial_fraction, 4) << ")\n"
            << "  communication: " << to_string(rep.comm_primary.shape())
            << " (R^2 " << fmt_fixed(rep.comm_primary.best.r_squared, 3)
            << ")\n"
            << "  reducible fraction: "
            << fmt_fixed(rep.reducible_fraction, 3) << "\n\n";

  TextTable gear_table({"gear", "S_g", "P_g [W]", "I_g [W]"});
  for (const auto& g : rep.gear_data.gears) {
    gear_table.add_row({std::to_string(g.gear_label),
                        fmt_fixed(g.slowdown, 3),
                        fmt_fixed(g.active_power.value(), 1),
                        fmt_fixed(g.idle_power.value(), 1)});
  }
  std::cout << "Single-node gear characterization (paper step 4):\n"
            << gear_table.to_string() << '\n';

  TextTable pred({"nodes", "gear", "time [s]", "energy [kJ]"});
  const Seconds t1 = rep.primary.front().wall;
  for (int m : {8, 16, 32, target}) {
    const model::Curve curve = scaling.predicted_curve(m);
    const double speedup = t1 / curve.fastest().time;
    bool first = true;
    for (const auto& p : curve.points) {
      pred.add_row({first ? std::to_string(m) +
                                (speedup < 1.0 ? " (slowdown!)" : "")
                          : "",
                    std::to_string(p.gear_label),
                    fmt_fixed(p.time.value(), 1),
                    fmt_fixed(p.energy.value() / 1e3, 1)});
      first = false;
    }
    pred.add_rule();
    const std::size_t best = model::min_energy_index(curve);
    if (m == target) {
      std::cout << "Predicted curve up to " << target << " nodes:\n"
                << pred.to_string() << '\n'
                << "At " << target << " nodes: speedup vs 1 node "
                << fmt_fixed(speedup, 2) << "x; minimum-energy gear "
                << curve.points[best].gear_label << " ("
                << fmt_percent(curve.points[best].energy /
                                   curve.points[0].energy -
                               1.0)
                << " energy for "
                << fmt_percent(curve.points[best].time / curve.points[0].time -
                               1.0)
                << " time vs gear 1)\n";
    }
  }
  return 0;
}
