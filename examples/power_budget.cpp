// power_budget — the paper's motivating scenario: "a program running on a
// cluster may be allowed to generate only a limited amount of heat."
//
//   $ power_budget [workload] [watts]     (default: CG 700)
//
// A power cap is a horizontal line on the paper's energy-time plots
// (energy/time = average watts).  For each node count this example finds
// the fastest gear whose whole-run average draw fits under the cap, then
// reports the best (nodes, gear) choice — often *more* nodes at a *lower*
// gear, which is exactly the option a conventional cluster lacks.
#include <iostream>
#include <string>

#include "cluster/experiment.hpp"
#include "model/tradeoff.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace gearsim;

  const std::string name = argc > 1 ? argv[1] : "CG";
  const Watts cap = watts(argc > 2 ? std::stod(argv[2]) : 700.0);
  const auto workload = workloads::make_workload(name);
  cluster::ExperimentRunner runner(cluster::athlon_cluster());

  std::cout << "Scheduling " << name << " under a cluster power cap of "
            << fmt_fixed(cap.value(), 0) << " W\n\n";

  TextTable table({"nodes", "uncapped fastest", "capped choice", "time [s]",
                   "mean power [W]"});
  std::optional<model::EtPoint> best;
  int best_nodes = 0;
  for (int n : workloads::paper_node_counts(*workload,
                                            runner.config().max_nodes)) {
    const model::Curve curve =
        model::curve_from_runs(runner.gear_sweep(*workload, n));
    const auto pick = model::best_under_power_cap(curve, cap);
    table.add_row(
        {std::to_string(n),
         "gear 1, " + fmt_fixed(curve.fastest().time.value(), 1) + "s @" +
             fmt_fixed((curve.fastest().energy / curve.fastest().time).value(),
                       0) +
             "W",
         pick ? "gear " + std::to_string(pick->gear_label) : "infeasible",
         pick ? fmt_fixed(pick->time.value(), 1) : "-",
         pick ? fmt_fixed((pick->energy / pick->time).value(), 0) : "-"});
    if (pick && (!best || pick->time < best->time)) {
      best = pick;
      best_nodes = n;
    }
  }
  std::cout << table.to_string() << '\n';

  if (best) {
    std::cout << "Best configuration under " << fmt_fixed(cap.value(), 0)
              << " W: " << best_nodes << " nodes at gear "
              << best->gear_label << " — " << fmt_fixed(best->time.value(), 1)
              << " s, " << fmt_fixed(best->energy.value() / 1e3, 1)
              << " kJ.\n"
              << "A conventional (fixed-gear) cluster could only choose the"
                 " node count; the gear dimension is what a power-scalable"
                 " cluster adds.\n";
  } else {
    std::cout << "No configuration fits under the cap — lower the cap"
                 " target or add slower gears.\n";
  }
  return 0;
}
