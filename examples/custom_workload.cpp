// custom_workload — writing your own MPI program against the library.
//
// Implements a 2-D "ocean model" skeleton from scratch using the public
// building blocks: characterize helpers turn (UPM, T1, F_s) into compute
// blocks, the patterns library provides deadlock-safe exchanges, and the
// experiment runner measures it like any built-in workload — gear sweep,
// curve analytics, even the five-step scaling model.
#include <iostream>

#include "cluster/experiment.hpp"
#include "model/pipeline.hpp"
#include "model/tradeoff.hpp"
#include "util/table.hpp"
#include "workloads/characterize.hpp"
#include "workloads/patterns.hpp"

using namespace gearsim;

namespace {

/// A hand-written workload: alternating barotropic/baroclinic phases with
/// different memory pressure, halo exchanges each step, and a periodic
/// global CFL reduction.
class OceanModel final : public cluster::Workload {
 public:
  [[nodiscard]] std::string name() const override { return "Ocean"; }

  void run(cluster::RankContext& ctx) const override {
    const int n = ctx.nprocs();
    // Phase characterizations: the fast 2-D solver streams through cache
    // (memory-bound, low UPM); the tracer/advection phase is arithmetic
    // heavy (high UPM).  Each phase gets its share of the sequential time.
    const cpu::ComputeBlock barotropic =
        workloads::block_for_time(ctx.cpu_model(), /*upm=*/12.0,
                                  seconds(45.0))
            .scaled(workloads::amdahl_share(0.01, n) / kSteps);
    const cpu::ComputeBlock baroclinic =
        workloads::block_for_time(ctx.cpu_model(), /*upm=*/140.0,
                                  seconds(75.0))
            .scaled(workloads::amdahl_share(0.01, n) / kSteps);

    for (int step = 0; step < kSteps; ++step) {
      ctx.compute(barotropic);
      workloads::ring_halo_exchange(ctx, kilobytes(48));
      ctx.compute(baroclinic);
      workloads::ring_halo_exchange(ctx, kilobytes(48));
      if (n > 1 && step % 5 == 4) {
        ctx.comm().allreduce(8);  // Global CFL condition.
      }
    }
  }

 private:
  static constexpr int kSteps = 60;
};

}  // namespace

int main() {
  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  const OceanModel ocean;

  std::cout << "Custom workload \"" << ocean.name()
            << "\": two phases (UPM 12 and 140), ring halos, periodic"
               " CFL reduction\n\n";

  // Measure it exactly like a built-in benchmark.
  TextTable table({"nodes", "gear", "time [s]", "energy [kJ]",
                   "energy vs g1"});
  for (int n : {1, 4, 8}) {
    const auto runs = runner.gear_sweep(ocean, n);
    const model::Curve curve = model::curve_from_runs(runs);
    const auto rel = model::relative_to_fastest(curve);
    for (std::size_t g = 0; g < curve.points.size(); ++g) {
      table.add_row({g == 0 ? std::to_string(n) : "",
                     std::to_string(curve.points[g].gear_label),
                     fmt_fixed(curve.points[g].time.value(), 1),
                     fmt_fixed(curve.points[g].energy.value() / 1e3, 2),
                     fmt_percent(rel[g].energy_delta)});
    }
    table.add_rule();
  }
  std::cout << table.to_string() << '\n';

  // The mixed-phase workload sits between CG and EP: a modest sweet spot.
  const model::Curve c1 = model::curve_from_runs(runner.gear_sweep(ocean, 1));
  const std::size_t best = model::min_energy_index(c1);
  std::cout << "Single-node minimum-energy gear: "
            << c1.points[best].gear_label << '\n';

  // And the five-step model extrapolates it like any NAS code.
  cluster::ExperimentRunner sun(cluster::sun_cluster());
  model::ScalingModel::Options opts;
  opts.primary_nodes = {1, 2, 4, 8};
  opts.validation_nodes = {1, 2, 4, 8, 16, 32};
  const auto scaling = model::ScalingModel::build(runner, sun, ocean, opts);
  const model::Curve predicted = scaling.predicted_curve(32);
  std::cout << "Model prediction at 32 nodes (fastest gear): "
            << fmt_fixed(predicted.fastest().time.value(), 1) << " s, "
            << fmt_fixed(predicted.fastest().energy.value() / 1e3, 1)
            << " kJ (comm classified "
            << to_string(scaling.report().comm_primary.shape()) << ")\n";
  return 0;
}
