// gear_explorer — interactive-style exploration of the two dimensions the
// paper gives a power-scalable cluster user: node count and gear.
//
//   $ gear_explorer [workload]            (default: LU)
//
// For every valid node count up to the cluster size, sweeps all gears,
// prints the energy-time matrix, the Pareto-optimal points across the
// *entire* (nodes x gear) space, and classifies every node-count
// transition into the paper's case 1/2/3 taxonomy.
#include <iostream>
#include <string>

#include "cluster/experiment.hpp"
#include "model/tradeoff.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace gearsim;

  const std::string name = argc > 1 ? argv[1] : "LU";
  const auto workload = workloads::make_workload(name);
  cluster::ExperimentRunner runner(cluster::athlon_cluster());

  std::cout << "Exploring " << name
            << " on the simulated Athlon-64 cluster (<= "
            << runner.config().max_nodes << " nodes, "
            << runner.num_gears() << " gears)\n\n";

  struct SpacePoint {
    int nodes;
    model::EtPoint point;
  };
  std::vector<SpacePoint> space;
  std::vector<model::Curve> curves;

  TextTable matrix({"nodes", "gear", "time [s]", "energy [kJ]",
                    "mean power [W]"});
  for (int n : workloads::paper_node_counts(*workload,
                                            runner.config().max_nodes)) {
    const auto runs = runner.gear_sweep(*workload, n);
    curves.push_back(model::curve_from_runs(runs));
    bool first = true;
    for (const auto& p : curves.back().points) {
      matrix.add_row({first ? std::to_string(n) : "",
                      std::to_string(p.gear_label),
                      fmt_fixed(p.time.value(), 1),
                      fmt_fixed(p.energy.value() / 1e3, 2),
                      fmt_fixed((p.energy / p.time).value(), 0)});
      space.push_back({n, p});
      first = false;
    }
    matrix.add_rule();
  }
  std::cout << matrix.to_string() << '\n';

  // Node-count transitions in the paper's taxonomy.
  std::cout << "Node-count transitions:\n";
  for (std::size_t i = 1; i < curves.size(); ++i) {
    std::cout << "  " << curves[i - 1].nodes << " -> " << curves[i].nodes
              << ": " << model::to_string(
                             model::classify_transition(curves[i - 1],
                                                        curves[i]))
              << '\n';
  }

  // Global Pareto frontier over the whole configuration space.
  model::Curve flat;
  flat.nodes = 0;
  for (const auto& sp : space) flat.points.push_back(sp.point);
  // classify by (time, energy) only; remap indices back to node counts.
  std::cout << "\nPareto-optimal configurations (no other configuration is"
               " both faster and cheaper):\n";
  TextTable frontier({"nodes", "gear", "time [s]", "energy [kJ]"});
  for (std::size_t idx : model::pareto_frontier(flat)) {
    frontier.add_row({std::to_string(space[idx].nodes),
                      std::to_string(space[idx].point.gear_label),
                      fmt_fixed(space[idx].point.time.value(), 1),
                      fmt_fixed(space[idx].point.energy.value() / 1e3, 2)});
  }
  std::cout << frontier.to_string();
  return 0;
}
