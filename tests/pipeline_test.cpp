// Tests for the five-step methodology pipeline (model::ScalingModel):
// building the fits, extrapolating, predicting, and validating against
// direct simulation.
#include <gtest/gtest.h>

#include "model/pipeline.hpp"
#include "workloads/registry.hpp"

namespace gearsim::model {
namespace {

struct Rig {
  cluster::ExperimentRunner athlon{cluster::athlon_cluster()};
  cluster::ExperimentRunner sun{cluster::sun_cluster()};

  ScalingModel build(const std::string& name,
                     std::optional<ScalingShape> shape = std::nullopt,
                     bool refined = true) {
    const auto workload = workloads::make_workload(name);
    ScalingModel::Options opts;
    opts.primary_nodes = workloads::paper_node_counts(*workload, 9);
    opts.validation_nodes = workloads::paper_node_counts(*workload, 32);
    opts.comm_shape = shape;
    opts.refined = refined;
    return ScalingModel::build(athlon, sun, *workload, opts);
  }
};

TEST(Pipeline, GathersSamplesOnBothClusters) {
  Rig rig;
  const ScalingModel m = rig.build("CG");
  const ScalingReport& rep = m.report();
  EXPECT_EQ(rep.primary.size(), 4u);     // 1, 2, 4, 8.
  EXPECT_EQ(rep.validation.size(), 6u);  // 1..32.
  for (const auto& s : rep.primary) {
    EXPECT_NEAR((s.active + s.idle).value(), s.wall.value(), 1e-9);
  }
}

TEST(Pipeline, AmdahlFitsAgreeAcrossClusters) {
  // The paper's validation: F_p/F_s nearly identical on both machines.
  Rig rig;
  for (const char* name : {"EP", "LU", "MG", "SP"}) {
    const ScalingModel m = rig.build(name);
    const ScalingReport& rep = m.report();
    EXPECT_NEAR(rep.amdahl_primary.serial_fraction,
                rep.amdahl_validation.serial_fraction, 0.01)
        << name;
  }
}

TEST(Pipeline, CommShapesAgreeAcrossClusters) {
  // Paper: "each communication shape that we chose for our power-scalable
  // cluster is identical on the Sun cluster up to 32 nodes".
  Rig rig;
  const ScalingModel cg = rig.build("CG", ScalingShape::kQuadratic);
  EXPECT_EQ(cg.report().comm_validation.shape(), ScalingShape::kQuadratic);
  const ScalingModel ep = rig.build("EP", ScalingShape::kLogarithmic);
  // EP has negligible communication; accept constant or logarithmic.
  const ScalingShape s = ep.report().comm_validation.shape();
  EXPECT_TRUE(s == ScalingShape::kLogarithmic || s == ScalingShape::kConstant);
}

TEST(Pipeline, DecompositionScalesWithNodes) {
  Rig rig;
  const ScalingModel m = rig.build("CG", ScalingShape::kQuadratic);
  const TimeDecomposition d8 = m.decompose(8);
  const TimeDecomposition d32 = m.decompose(32);
  EXPECT_GT(d8.active.value(), d32.active.value());   // Amdahl shrinks.
  EXPECT_LT(d8.idle.value(), d32.idle.value());       // Quadratic grows.
  EXPECT_NEAR((d8.critical + d8.reducible).value(), d8.active.value(), 1e-9);
}

TEST(Pipeline, SingleNodePredictionMatchesMeasurement) {
  // At m=1 and the fastest gear, the model must reproduce the measured
  // 1-node run almost exactly (it was fit from it).
  Rig rig;
  for (const char* name : {"EP", "CG", "LU"}) {
    const ScalingModel m = rig.build(name);
    const Prediction p = m.predict(1, 0);
    const Seconds measured = m.report().primary.front().wall;
    EXPECT_NEAR(p.time / measured, 1.0, 0.03) << name;
  }
}

TEST(Pipeline, InterpolationErrorIsSmall) {
  // Predicting a node count we *measured* (8) should land close.
  Rig rig;
  const ScalingModel m = rig.build("LU", ScalingShape::kLinear);
  const auto& samples = m.report().primary;
  const auto it8 = std::find_if(samples.begin(), samples.end(),
                                [](const auto& s) { return s.nodes == 8; });
  ASSERT_NE(it8, samples.end());
  const Prediction p = m.predict(8, 0);
  EXPECT_NEAR(p.time / it8->wall, 1.0, 0.05);
}

TEST(Pipeline, PredictedCurveHasOnePointPerGear) {
  Rig rig;
  const ScalingModel m = rig.build("SP", ScalingShape::kLogarithmic);
  const Curve c = m.predicted_curve(16);
  ASSERT_EQ(c.points.size(), 6u);
  EXPECT_EQ(c.nodes, 16);
  // Fastest gear fastest; slower gears never faster.
  for (std::size_t g = 1; g < 6; ++g) {
    EXPECT_GE(c.points[g].time.value(), c.points[0].time.value());
  }
}

TEST(Pipeline, RefinedNeverPredictsMoreTimeThanNaive) {
  Rig rig;
  for (const char* name : {"LU", "MG", "SP"}) {
    const ScalingModel refined = rig.build(name, std::nullopt, true);
    const ScalingModel naive = rig.build(name, std::nullopt, false);
    for (int m : {8, 16, 32}) {
      for (std::size_t g = 0; g < 6; ++g) {
        EXPECT_LE(refined.predict(m, g).time.value(),
                  naive.predict(m, g).time.value() + 1e-9)
            << name << " m=" << m << " g=" << g;
      }
    }
  }
}

TEST(Pipeline, ValidationAgainstDirectSimulation) {
  // The check the paper could not run: simulate the big power-scalable
  // cluster directly and compare.  Jacobi is smooth and near-Amdahl, so
  // with load imbalance disabled (the model has no imbalance term) the
  // extrapolation should be accurate.
  cluster::ClusterConfig athlon_config = cluster::athlon_cluster();
  athlon_config.load_imbalance = 0.0;
  cluster::ExperimentRunner athlon(athlon_config);
  cluster::ExperimentRunner sun(cluster::sun_cluster());
  cluster::ClusterConfig big_config = athlon_config;
  big_config.max_nodes = 32;
  // A real 32-node build would carry a fabric sized for it; keep the
  // switch at full bisection so the hypothetical machine is not
  // bottlenecked by the 10-node cluster's 12-port switch.
  big_config.network.backplane_bandwidth =
      32 * big_config.network.link_bandwidth;
  cluster::ExperimentRunner big(big_config);
  const auto jacobi = workloads::make_workload("Jacobi");
  ScalingModel::Options opts;
  opts.primary_nodes = {1, 2, 4, 6, 8};
  opts.validation_nodes = {1, 2, 4, 8, 16, 32};
  const ScalingModel m = ScalingModel::build(athlon, sun, *jacobi, opts);
  const auto points = validate_against_direct(m, big, *jacobi, {16, 32});
  ASSERT_EQ(points.size(), 12u);  // 2 node counts x 6 gears.
  RunningStats terr;
  for (const auto& v : points) {
    // Absolute runs are short at 16-32 nodes, so fractional errors
    // inflate; bound each point loosely and the mean tightly.
    EXPECT_LT(std::abs(v.time_error), 0.35)
        << v.nodes << " nodes, gear " << v.gear_label;
    EXPECT_LT(std::abs(v.energy_error), 0.35)
        << v.nodes << " nodes, gear " << v.gear_label;
    terr.add(std::abs(v.time_error));
  }
  EXPECT_LT(terr.mean(), 0.2);
}

TEST(Pipeline, ReducibleFractionIsAFraction) {
  Rig rig;
  for (const char* name : {"EP", "BT", "LU", "MG", "SP", "CG"}) {
    const double rho = rig.build(name).report().reducible_fraction;
    EXPECT_GE(rho, 0.0) << name;
    EXPECT_LE(rho, 1.0) << name;
  }
}

TEST(Pipeline, FsTrendPoolsBothClusters) {
  Rig rig;
  const ScalingModel m = rig.build("MG");
  const ScalingReport& rep = m.report();
  // 3 multi-node primary + 5 multi-node validation samples feed the trend.
  EXPECT_EQ(rep.fs_family_primary.size(), 3u);
  EXPECT_EQ(rep.fs_family_validation.size(), 5u);
  // Extrapolated Fs stays near the fitted values (MG ~ 0.12).
  EXPECT_NEAR(rep.fs_trend.at(32.0), 0.12, 0.04);
}

}  // namespace
}  // namespace gearsim::model
