// Tests for the parallel sweep executor: cache keys, the JSON result
// codec, the two-tier ResultCache (including store-v3 crash consistency:
// torn writes, bit flips, legacy entries, stale temp files, quarantine),
// and the determinism contract — SweepRunner output is bit-identical
// (per to_json, which covers every RunResult field) across job counts
// and cold/warm caches.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/dvfs.hpp"
#include "cluster/experiment.hpp"
#include "exec/cache_key.hpp"
#include "exec/result_cache.hpp"
#include "exec/result_io.hpp"
#include "exec/store.hpp"
#include "exec/sweep_runner.hpp"
#include "obs/metrics.hpp"
#include "util/failpoint.hpp"
#include "workloads/jacobi.hpp"
#include "workloads/registry.hpp"

namespace gearsim::exec {
namespace {

/// A scratch directory removed on destruction, for disk-cache tests.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& tag)
      : path(std::filesystem::temp_directory_path() /
             ("gearsim_exec_test_" + tag)) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

std::vector<std::string> fingerprints(
    const std::vector<cluster::RunResult>& runs) {
  std::vector<std::string> out;
  out.reserve(runs.size());
  for (const auto& r : runs) out.push_back(to_json(r));
  return out;
}

// ---- cache keys -------------------------------------------------------------

TEST(CacheKeyTest, SensitiveToEverySweepCoordinate) {
  const cluster::ClusterConfig config = cluster::athlon_cluster();
  const CacheKey base = sweep_point_key(config, "J", 4, 2, 0, nullptr);
  EXPECT_NE(base.text,
            sweep_point_key(config, "J2", 4, 2, 0, nullptr).text);
  EXPECT_NE(base.text, sweep_point_key(config, "J", 5, 2, 0, nullptr).text);
  EXPECT_NE(base.text, sweep_point_key(config, "J", 4, 3, 0, nullptr).text);
  EXPECT_NE(base.text, sweep_point_key(config, "J", 4, 2, 1, nullptr).text);
}

TEST(CacheKeyTest, SensitiveToConfigFields) {
  const cluster::ClusterConfig config = cluster::athlon_cluster();
  const CacheKey base = sweep_point_key(config, "J", 4, 2, 0, nullptr);

  cluster::ClusterConfig seeded = config;
  seeded.seed += 1;
  EXPECT_NE(base.text, sweep_point_key(seeded, "J", 4, 2, 0, nullptr).text);

  cluster::ClusterConfig power = config;
  power.power.base = power.power.base + watts(1.0);
  EXPECT_NE(base.text, sweep_point_key(power, "J", 4, 2, 0, nullptr).text);

  cluster::ClusterConfig net = config;
  net.network.latency_jitter += 0.001;
  EXPECT_NE(base.text, sweep_point_key(net, "J", 4, 2, 0, nullptr).text);
}

TEST(CacheKeyTest, EmptyFaultPlanKeysLikeNoPlan) {
  // An empty plan is bit-identical to no plan at run time, so they must
  // share a cache entry; a populated plan must not.
  const cluster::ClusterConfig config = cluster::athlon_cluster();
  const faults::FaultPlan empty;
  faults::FaultPlan crashy(7);
  crashy.crash(1, seconds(5.0));

  const CacheKey none = sweep_point_key(config, "J", 4, 2, 0, nullptr);
  EXPECT_EQ(none.text, sweep_point_key(config, "J", 4, 2, 0, &empty).text);
  EXPECT_NE(none.text, sweep_point_key(config, "J", 4, 2, 0, &crashy).text);
}

TEST(CacheKeyTest, WorkloadSignatureFoldsParameters) {
  workloads::Jacobi::Params p;
  const std::string base = workloads::Jacobi(p).signature();
  p.iterations += 1;
  EXPECT_NE(base, workloads::Jacobi(p).signature());
}

TEST(CacheKeyTest, HexIsStable) {
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  CacheKey k;
  k.hash = 0xcbf29ce484222325ULL;
  EXPECT_EQ(k.hex(), "cbf29ce484222325");
}

// ---- result JSON codec ------------------------------------------------------

TEST(ResultIoTest, RoundTripsAPlainRun) {
  const cluster::ExperimentRunner runner(cluster::athlon_cluster());
  const cluster::RunResult r = runner.run(workloads::Jacobi(), 4, 2);
  const std::string json = to_json(r);
  const cluster::RunResult back = result_from_json(json);
  EXPECT_EQ(json, to_json(back));
  EXPECT_EQ(back.nodes, r.nodes);
  EXPECT_EQ(back.gear_index, r.gear_index);
  EXPECT_EQ(back.wall.value(), r.wall.value());  // Exact, not NEAR.
  EXPECT_EQ(back.energy.value(), r.energy.value());
  EXPECT_EQ(back.node_energy.size(), r.node_energy.size());
  EXPECT_EQ(back.breakdown.ranks.size(), r.breakdown.ranks.size());
}

TEST(ResultIoTest, RoundTripsFaultsAndPolicyFields) {
  cluster::ClusterConfig config = cluster::athlon_cluster();
  config.sample_power = true;
  const cluster::ExperimentRunner runner(config);

  faults::FaultPlan plan(11);
  plan.crash(1, seconds(2.0));
  plan.drop_meter(0, seconds(0.5), seconds(1.5));
  faults::CheckpointConfig ckpt;
  ckpt.interval = seconds(3.0);
  plan.with_checkpointing(ckpt);

  cluster::CommDownshift policy(0, 5);
  cluster::RunOptions options;
  options.policy = &policy;
  options.faults = &plan;
  const cluster::RunResult r = runner.run(workloads::Jacobi(), 4, options);

  const std::string json = to_json(r);
  const cluster::RunResult back = result_from_json(json);
  EXPECT_EQ(json, to_json(back));
  EXPECT_TRUE(back.policy_run);
  EXPECT_EQ(back.outcome, r.outcome);
  EXPECT_EQ(back.retries, r.retries);
  EXPECT_EQ(back.fault_events.size(), r.fault_events.size());
  EXPECT_EQ(back.sampled_energy.has_value(), r.sampled_energy.has_value());
}

TEST(ResultIoTest, RejectsMalformedInput) {
  EXPECT_THROW((void)result_from_json("{"), ContractError);
  EXPECT_THROW((void)result_from_json("{}"), ContractError);
  EXPECT_THROW((void)result_from_json("[1,2]"), ContractError);
  EXPECT_THROW((void)result_from_json(""), ContractError);
}

// ---- ResultCache ------------------------------------------------------------

cluster::RunResult small_result(int nodes) {
  cluster::RunResult r;
  r.nodes = nodes;
  r.wall = seconds(1.0 + nodes);
  return r;
}

CacheKey key_of(const std::string& text) {
  CacheKey k;
  k.text = text;
  k.hash = fnv1a(text);
  return k;
}

TEST(ResultCacheTest, HitMissAndCounters) {
  ResultCache cache;
  const CacheKey k = key_of("point-a");
  EXPECT_FALSE(cache.lookup(k).has_value());
  cache.insert(k, small_result(3));
  const auto hit = cache.lookup(k);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->nodes, 3);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.lookups(), 2u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache::Options options;
  options.capacity = 2;
  ResultCache cache(options);
  cache.insert(key_of("a"), small_result(1));
  cache.insert(key_of("b"), small_result(2));
  (void)cache.lookup(key_of("a"));            // "b" is now least recent.
  cache.insert(key_of("c"), small_result(3)); // Evicts "b".
  EXPECT_TRUE(cache.lookup(key_of("a")).has_value());
  EXPECT_FALSE(cache.lookup(key_of("b")).has_value());
  EXPECT_TRUE(cache.lookup(key_of("c")).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCacheTest, DiskStoreSurvivesProcessBoundary) {
  const TempDir dir("disk");
  const CacheKey k = key_of("persisted-point");
  {
    ResultCache::Options options;
    options.disk_dir = dir.path.string();
    ResultCache writer(options);
    writer.insert(k, small_result(5));
  }
  // A fresh cache (simulating a new process) must find it on disk.
  ResultCache::Options options;
  options.disk_dir = dir.path.string();
  ResultCache reader(options);
  const auto hit = reader.lookup(k);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->nodes, 5);
  EXPECT_EQ(reader.stats().disk_hits, 1u);
  EXPECT_EQ(reader.stats().misses, 0u);
}

TEST(ResultCacheTest, HashCollisionReadsAsMiss) {
  // Two different keys forced onto the same disk file (same hash field):
  // the stored key text mismatches the probe, so the lookup must miss
  // rather than return the other point's result.
  const TempDir dir("collide");
  ResultCache::Options options;
  options.disk_dir = dir.path.string();
  ResultCache cache(options);

  CacheKey a = key_of("first");
  CacheKey b = key_of("second");
  b.hash = a.hash;  // Forced collision: same file name.
  cache.insert(a, small_result(1));

  ResultCache fresh(options);
  EXPECT_FALSE(fresh.lookup(b).has_value());
  EXPECT_TRUE(fresh.lookup(a).has_value());
}

TEST(ResultCacheTest, CorruptDiskEntryReadsAsMiss) {
  const TempDir dir("corrupt");
  ResultCache::Options options;
  options.disk_dir = dir.path.string();
  const CacheKey k = key_of("mangled");
  {
    ResultCache writer(options);
    writer.insert(k, small_result(2));
  }
  // Truncate the entry mid-JSON.
  const std::string file = dir.path.string() + "/" + k.hex() + ".json";
  {
    std::ofstream out(file, std::ios::trunc);
    out << "{\"key\":\"" << k.text << "\",\"result\":{\"nodes\":";
  }
  ResultCache reader(options);
  EXPECT_FALSE(reader.lookup(k).has_value());
  EXPECT_EQ(reader.stats().misses, 1u);
}

// ---- store v3 crash consistency ---------------------------------------------

std::string entry_path(const TempDir& dir, const CacheKey& k) {
  return dir.path.string() + "/" + k.hex() + ".json";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST(StoreTest, TruncatedEntryIsQuarantinedAndRecomputed) {
  const TempDir dir("truncated");
  ResultCache::Options options;
  options.disk_dir = dir.path.string();
  const CacheKey k = key_of("torn-write");
  {
    ResultCache writer(options);
    writer.insert(k, small_result(4));
  }
  const std::string path = entry_path(dir, k);
  const std::string whole = read_file(path);
  write_file(path, whole.substr(0, whole.size() / 2));  // Torn write.

  ResultCache reader(options);
  EXPECT_FALSE(reader.lookup(k).has_value());
  EXPECT_EQ(reader.stats().corrupt, 1u);
  EXPECT_EQ(reader.stats().quarantined, 1u);
  EXPECT_EQ(reader.stats().misses, 1u);
  // Quarantined out of the live directory, preserved for post-mortem.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(dir.path / kQuarantineDir /
                                      (k.hex() + ".json")));

  // Recompute-and-reinsert replaces the entry byte-identically: the
  // store's contents depend only on (key, result), never on history.
  reader.insert(k, small_result(4));
  EXPECT_EQ(read_file(path), whole);
}

TEST(StoreTest, BitFlipFailsChecksumAndQuarantines) {
  const TempDir dir("bitflip");
  ResultCache::Options options;
  options.disk_dir = dir.path.string();
  const CacheKey k = key_of("flipped");
  {
    ResultCache writer(options);
    writer.insert(k, small_result(7));
  }
  const std::string path = entry_path(dir, k);
  std::string bytes = read_file(path);
  bytes[bytes.size() - 10] ^= 0x20;  // One flipped bit in the payload.
  write_file(path, bytes);

  ResultCache reader(options);
  EXPECT_FALSE(reader.lookup(k).has_value());
  EXPECT_EQ(reader.stats().corrupt, 1u);
  const StoreValidation v = validate_store_bytes(bytes);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("checksum"), std::string::npos);
}

TEST(StoreTest, HeaderlessLegacyEntryIsQuarantined) {
  const TempDir dir("legacy");
  ResultCache::Options options;
  options.disk_dir = dir.path.string();
  const CacheKey k = key_of("old-format");
  // A pre-v3 entry: bare payload, no integrity header.
  write_file(entry_path(dir, k), "{\"key\":\"" + k.text +
                                     "\",\"result\":{\"nodes\":1}}\n");
  ResultCache reader(options);
  EXPECT_FALSE(reader.lookup(k).has_value());
  EXPECT_EQ(reader.stats().corrupt, 1u);
  EXPECT_EQ(reader.stats().quarantined, 1u);
}

TEST(StoreTest, ValidChecksumUndecodableResultIsQuarantined) {
  // A hand-edited entry whose header was dutifully recomputed: bytes are
  // self-consistent but the result JSON no longer decodes.  The read
  // path's std::exception net (not just ContractError) must catch it.
  const TempDir dir("handedit");
  ResultCache::Options options;
  options.disk_dir = dir.path.string();
  const CacheKey k = key_of("edited");
  const std::string payload = "{\"format\":" + std::to_string(3) +
                              ",\"key\":\"" + k.text +
                              "\",\"result\":{\"nonsense\":true}}\n";
  std::ostringstream entry;
  entry << "gearsim-store v3 len=" << payload.size() << " fnv1a=" << std::hex
        << std::setw(16) << std::setfill('0') << fnv1a(payload) << "\n"
        << payload;
  write_file(entry_path(dir, k), entry.str());

  ResultCache reader(options);
  EXPECT_FALSE(reader.lookup(k).has_value());
  EXPECT_EQ(reader.stats().corrupt, 1u);
  EXPECT_EQ(reader.stats().quarantined, 1u);
}

TEST(StoreTest, StaleTmpFileIsSweptNotServed) {
  const TempDir dir("staletmp");
  ResultCache::Options options;
  options.disk_dir = dir.path.string();
  const CacheKey k = key_of("interrupted");
  // A writer died between write and rename: only the temp file exists.
  const std::string tmp = entry_path(dir, k) + ".tmp.123.0";
  write_file(tmp, render_store_entry(k.text, small_result(9)));

  ResultCache reader(options);
  EXPECT_EQ(reader.stats().stale_tmp_swept, 1u);
  EXPECT_FALSE(std::filesystem::exists(tmp));
  EXPECT_FALSE(reader.lookup(k).has_value());  // Never served from tmp.
  EXPECT_EQ(reader.stats().misses, 1u);
}

TEST(StoreTest, RenameFailpointLeavesOnlyTmpBehind) {
  const TempDir dir("renamefail");
  ResultCache::Options options;
  options.disk_dir = dir.path.string();
  const CacheKey k = key_of("never-renamed");
  {
    ResultCache writer(options);
    const util::ScopedFailpoint fp("exec.store.rename.fail", {});
    writer.insert(k, small_result(3));
  }
  EXPECT_FALSE(std::filesystem::exists(entry_path(dir, k)));

  // The "crashed" writer's temp file is swept by the next construction,
  // and the point reads as a plain miss (memory tier aside).
  ResultCache reader(options);
  EXPECT_EQ(reader.stats().stale_tmp_swept, 1u);
  EXPECT_FALSE(reader.lookup(k).has_value());
}

TEST(StoreTest, TruncateFailpointProducesDetectableCorruption) {
  const TempDir dir("truncfp");
  ResultCache::Options options;
  options.disk_dir = dir.path.string();
  const CacheKey k = key_of("torn-by-failpoint");
  {
    ResultCache writer(options);
    util::FailpointSpec spec;
    spec.arg = 40;  // Keep only the first 40 bytes.
    const util::ScopedFailpoint fp("exec.store.write.truncate", spec);
    writer.insert(k, small_result(6));
  }
  ResultCache reader(options);
  EXPECT_FALSE(reader.lookup(k).has_value());
  EXPECT_EQ(reader.stats().corrupt, 1u);
}

TEST(StoreTest, VerifyAndScrubWalkTheStore) {
  const TempDir dir("walk");
  ResultCache::Options options;
  options.disk_dir = dir.path.string();
  const CacheKey good = key_of("good");
  const CacheKey bad = key_of("bad");
  {
    ResultCache writer(options);
    writer.insert(good, small_result(1));
    writer.insert(bad, small_result(2));
  }
  const std::string bad_path = entry_path(dir, bad);
  const std::string whole = read_file(bad_path);
  write_file(bad_path, whole.substr(0, 30));
  write_file(entry_path(dir, good) + ".tmp.99.1", "leftover");

  const StoreReport verified = verify_store(dir.path.string());
  EXPECT_EQ(verified.scanned, 2u);
  EXPECT_EQ(verified.valid, 1u);
  ASSERT_EQ(verified.corrupt.size(), 1u);
  EXPECT_EQ(verified.corrupt[0], bad_path);
  EXPECT_EQ(verified.stale_tmp.size(), 1u);
  EXPECT_FALSE(verified.clean());
  EXPECT_EQ(verified.quarantined, 0u);  // verify is read-only
  EXPECT_TRUE(std::filesystem::exists(bad_path));

  const StoreReport scrubbed = scrub_store(dir.path.string());
  EXPECT_EQ(scrubbed.quarantined, 1u);
  EXPECT_EQ(scrubbed.removed_tmp, 1u);
  EXPECT_FALSE(std::filesystem::exists(bad_path));
  EXPECT_TRUE(std::filesystem::exists(dir.path / kQuarantineDir /
                                      (bad.hex() + ".json")));

  const StoreReport after = verify_store(dir.path.string());
  EXPECT_TRUE(after.clean());
  EXPECT_EQ(after.scanned, 1u);
}

TEST(StoreTest, QuarantineCollisionKeepsBothCopies) {
  const TempDir dir("collide2");
  ResultCache::Options options;
  options.disk_dir = dir.path.string();
  const CacheKey k = key_of("twice-corrupt");
  for (int round = 0; round < 2; ++round) {
    {
      ResultCache writer(options);
      writer.insert(k, small_result(round + 1));
    }
    const std::string path = entry_path(dir, k);
    write_file(path, read_file(path).substr(0, 25));
    ResultCache reader(options);
    EXPECT_FALSE(reader.lookup(k).has_value());
    EXPECT_EQ(reader.stats().quarantined, 1u);
  }
  // Both corrupt generations survive under distinct quarantine names.
  std::size_t quarantined = 0;
  for (const auto& e :
       std::filesystem::directory_iterator(dir.path / kQuarantineDir)) {
    if (e.is_regular_file()) ++quarantined;
  }
  EXPECT_EQ(quarantined, 2u);
}

TEST(StoreTest, CorruptionEventsReachMetrics) {
  const TempDir dir("metrics");
  obs::MetricsRegistry reg;
  ResultCache::Options options;
  options.disk_dir = dir.path.string();
  options.metrics = &reg;
  const CacheKey k = key_of("counted");
  {
    ResultCache writer(options);
    writer.insert(k, small_result(2));
  }
  const std::string path = entry_path(dir, k);
  write_file(path, read_file(path).substr(0, 20));

  ResultCache reader(options);
  EXPECT_FALSE(reader.lookup(k).has_value());
  EXPECT_EQ(reg.counter("exec.store.corrupt").value(), 1u);
  EXPECT_EQ(reg.counter("exec.store.quarantined").value(), 1u);
}

// ---- SweepRunner determinism ------------------------------------------------

TEST(SweepRunnerTest, ValidatesPointsUpFront) {
  const SweepRunner runner(cluster::athlon_cluster());
  const workloads::Jacobi jacobi;
  EXPECT_THROW((void)runner.run({SweepPoint{nullptr, 2, 0, 0}}),
               ContractError);
  EXPECT_THROW((void)runner.run({SweepPoint{&jacobi, 0, 0, 0}}),
               ContractError);
  EXPECT_THROW((void)runner.run({SweepPoint{&jacobi, 11, 0, 0}}),
               ContractError);
  EXPECT_THROW((void)runner.run({SweepPoint{&jacobi, 2, 6, 0}}),
               ContractError);
  EXPECT_THROW((void)runner.run({SweepPoint{&jacobi, 2, 0, -1}}),
               ContractError);
}

TEST(SweepRunnerTest, BitIdenticalAcrossJobCounts) {
  // The determinism contract: jobs=1 and jobs=8 produce byte-identical
  // results (to_json covers every field) in the same order.
  const workloads::Jacobi jacobi;
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions wide;
  wide.jobs = 8;
  const SweepRunner a(cluster::athlon_cluster(), serial);
  const SweepRunner b(cluster::athlon_cluster(), wide);

  const auto ra = a.grid(jacobi, {1, 2, 4});
  const auto rb = b.grid(jacobi, {1, 2, 4});
  ASSERT_EQ(ra.size(), rb.size());
  EXPECT_EQ(fingerprints(ra), fingerprints(rb));
}

TEST(SweepRunnerTest, MatchesExperimentRunnerGearSweep) {
  // SweepRunner is a scheduling layer, not a different simulator: its
  // gear sweep must equal ExperimentRunner::gear_sweep bit for bit.
  const workloads::Jacobi jacobi;
  const cluster::ExperimentRunner direct(cluster::athlon_cluster());
  SweepOptions options;
  options.jobs = 4;
  const SweepRunner sweep(cluster::athlon_cluster(), options);
  EXPECT_EQ(fingerprints(direct.gear_sweep(jacobi, 4)),
            fingerprints(sweep.gear_sweep(jacobi, 4)));
}

TEST(SweepRunnerTest, RepeatMatchesRunRepeatedSeeds) {
  // repeat() shifts seeds exactly like run_repeated: rep r uses
  // (seed + r, jitter_seed + r).
  const workloads::Jacobi jacobi;
  const cluster::ExperimentRunner direct(cluster::athlon_cluster());
  const SweepRunner sweep(cluster::athlon_cluster());
  const auto reference = direct.run_repeated(jacobi, 2, 1, 3);
  const auto repeated = sweep.repeat(jacobi, 2, 1, 3);
  ASSERT_EQ(reference.runs.size(), repeated.size());
  EXPECT_EQ(fingerprints(reference.runs), fingerprints(repeated));
}

TEST(SweepRunnerTest, ColdAndWarmCacheAreByteIdentical) {
  const workloads::Jacobi jacobi;
  const TempDir dir("warm");
  ResultCache::Options cache_options;
  cache_options.disk_dir = dir.path.string();

  std::vector<std::string> cold;
  {
    ResultCache cache(cache_options);
    SweepOptions options;
    options.jobs = 2;
    options.cache = &cache;
    const SweepRunner runner(cluster::athlon_cluster(), options);
    cold = fingerprints(runner.gear_sweep(jacobi, 2));
    EXPECT_EQ(cache.stats().misses, 6u);
    EXPECT_EQ(cache.stats().hits, 0u);
  }
  // Same process, warm memory+disk: every point must hit and match.
  {
    ResultCache cache(cache_options);  // Fresh memory; disk is warm.
    SweepOptions options;
    options.jobs = 2;
    options.cache = &cache;
    const SweepRunner runner(cluster::athlon_cluster(), options);
    const auto warm = fingerprints(runner.gear_sweep(jacobi, 2));
    EXPECT_EQ(cold, warm);
    EXPECT_EQ(cache.stats().disk_hits, 6u);
    EXPECT_EQ(cache.stats().misses, 0u);
  }
}

TEST(SweepRunnerTest, CacheDistinguishesFaultPlans) {
  // A faulty sweep must not be served a fault-free cached result.
  const workloads::Jacobi jacobi;
  ResultCache cache;

  SweepOptions clean;
  clean.cache = &cache;
  const SweepRunner clean_runner(cluster::athlon_cluster(), clean);
  const auto clean_runs = clean_runner.run({SweepPoint{&jacobi, 2, 0, 0}});

  faults::FaultPlan plan(3);
  plan.straggle(1, seconds(0.0), seconds(100.0), 5);
  SweepOptions faulty = clean;
  faulty.faults = &plan;
  const SweepRunner faulty_runner(cluster::athlon_cluster(), faulty);
  const auto faulty_runs = faulty_runner.run({SweepPoint{&jacobi, 2, 0, 0}});

  EXPECT_EQ(cache.stats().misses, 2u);  // No cross-contamination.
  EXPECT_NE(to_json(clean_runs[0]), to_json(faulty_runs[0]));
}

TEST(SweepRunnerTest, EngineModeSharesOneCache) {
  // Engine mode is deliberately NOT part of the cache key (cache_key.hpp
  // v4): the parallel path is held byte-equal to serial, so a
  // serial-written entry must be served verbatim to a parallel-engine
  // sweep — zero re-simulation.
  const workloads::Jacobi jacobi;
  ResultCache cache;

  SweepOptions serial;
  serial.cache = &cache;
  serial.engine_threads = 1;
  const SweepRunner serial_runner(cluster::athlon_cluster(), serial);
  const auto serial_runs =
      serial_runner.run({SweepPoint{&jacobi, 4, 2, 0}});
  EXPECT_EQ(cache.stats().misses, 1u);

  SweepOptions parallel = serial;
  parallel.engine_threads = 8;
  const SweepRunner parallel_runner(cluster::athlon_cluster(), parallel);
  const auto parallel_runs =
      parallel_runner.run({SweepPoint{&jacobi, 4, 2, 0}});
  EXPECT_EQ(cache.stats().misses, 1u);  // Served from the serial entry.
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(to_json(serial_runs[0]), to_json(parallel_runs[0]));
}

TEST(SweepRunnerTest, ParallelEngineSweepMatchesSerialSweep) {
  // Uncached cross-mode equivalence at the sweep layer: every cacheable
  // field of a parallel-engine sweep equals the serial sweep's.
  const workloads::Jacobi jacobi;
  SweepOptions options;
  options.engine_threads = 1;
  const SweepRunner serial_runner(cluster::athlon_cluster(), options);
  options.engine_threads = 4;
  const SweepRunner parallel_runner(cluster::athlon_cluster(), options);
  const auto serial_runs = serial_runner.gear_sweep(jacobi, 4);
  const auto parallel_runs = parallel_runner.gear_sweep(jacobi, 4);
  ASSERT_EQ(serial_runs.size(), parallel_runs.size());
  for (std::size_t i = 0; i < serial_runs.size(); ++i) {
    cluster::RunResult serial_run = serial_runs[i];
    cluster::RunResult parallel_run = parallel_runs[i];
    EXPECT_NE(serial_run.event_order_hash, 0u);
    EXPECT_EQ(parallel_run.event_order_hash, 0u);
    EXPECT_EQ(serial_run.event_set_hash, parallel_run.event_set_hash);
    EXPECT_GE(parallel_run.engine_partitions, 2u);
    // to_json covers every cached field; order hash is serial-only by
    // contract, so align it before the byte comparison.
    parallel_run.event_order_hash = serial_run.event_order_hash;
    EXPECT_EQ(to_json(serial_run), to_json(parallel_run));
  }
}

TEST(SweepRunnerTest, ExceptionInOnePointPropagates) {
  // BT requires a square node count; the failure must surface even when
  // other points of the same parallel sweep succeed.
  const auto bt = workloads::make_workload("BT");
  const workloads::Jacobi jacobi;
  SweepOptions options;
  options.jobs = 4;
  const SweepRunner runner(cluster::athlon_cluster(), options);
  EXPECT_THROW((void)runner.run({SweepPoint{&jacobi, 4, 0, 0},
                                 SweepPoint{bt.get(), 8, 0, 0}}),
               ContractError);
}

}  // namespace
}  // namespace gearsim::exec
