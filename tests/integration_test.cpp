// Integration tests: the paper's headline claims, asserted end-to-end
// against the full simulated measurement pipeline (these are the numbers
// EXPERIMENTS.md reports).
#include <gtest/gtest.h>

#include "cluster/experiment.hpp"
#include "model/tradeoff.hpp"
#include "workloads/jacobi.hpp"
#include "workloads/nas.hpp"
#include "workloads/registry.hpp"
#include "workloads/synthetic.hpp"

namespace gearsim {
namespace {

class PaperClaims : public ::testing::Test {
 protected:
  cluster::ExperimentRunner runner{cluster::athlon_cluster()};

  model::Curve sweep(const std::string& name, int nodes) {
    const auto w = workloads::make_workload(name);
    return model::curve_from_runs(runner.gear_sweep(*w, nodes));
  }
};

// Section 3.1 / Figure 1 ---------------------------------------------------------

TEST_F(PaperClaims, CgSavesTenPercentEnergyForOnePercentTime) {
  // "on one node, it is possible to use 10% less energy while increasing
  // time by 1%, with CG" (gear 2: -9.5% energy, <1% delay).
  const auto rel = model::relative_to_fastest(sweep("CG", 1));
  EXPECT_NEAR(rel[1].energy_delta, -0.095, 0.02);
  EXPECT_LT(rel[1].time_delta, 0.025);
}

TEST_F(PaperClaims, CgGearFiveSavesTwentyPercent) {
  const auto rel = model::relative_to_fastest(sweep("CG", 1));
  EXPECT_NEAR(rel[4].energy_delta, -0.20, 0.03);
  EXPECT_NEAR(rel[4].time_delta, 0.10, 0.03);
}

TEST_F(PaperClaims, EpHasEssentiallyNoSavings) {
  // "with EP there was essentially no savings": gear 2 ~ -2% energy for
  // ~+11% time (the delay tracks the cycle-time increase).
  const auto rel = model::relative_to_fastest(sweep("EP", 1));
  EXPECT_NEAR(rel[1].energy_delta, -0.02, 0.02);
  EXPECT_NEAR(rel[1].time_delta, 2000.0 / 1800.0 - 1.0, 0.015);
}

TEST_F(PaperClaims, FastestGearTakesTheLeastTimeForEveryBenchmark) {
  // "All of our tests show that for a given program, using the fastest
  // gear takes the least time."
  for (const auto& e : workloads::nas_suite()) {
    const model::Curve c = sweep(e.name, 1);
    for (std::size_t g = 1; g < c.points.size(); ++g) {
      EXPECT_GE(c.points[g].time.value(), c.points[0].time.value())
          << e.name << " gear " << g + 1;
    }
  }
}

TEST_F(PaperClaims, UpmOrdersTheSlopes) {
  // Table 1: memory pressure predicts the tradeoff, modulo one outlier
  // (MG in the paper; LU's MLP anomaly here).
  std::vector<model::TradeoffSummary> rows;
  for (const auto& e : workloads::nas_suite()) {
    const model::Curve c = sweep(e.name, 1);
    const auto w = e.make();
    const auto* nas = dynamic_cast<const workloads::NasSkeleton*>(w.get());
    rows.push_back({e.name, nas->params().upm,
                    model::slope_between(c.points[0], c.points[1]),
                    model::slope_between(c.points[1], c.points[2])});
  }
  EXPECT_GE(model::upm_slope_concordance(rows), 0.85);
  // CG (lowest UPM) has the steepest slope; EP (highest) the shallowest.
  EXPECT_LT(rows.back().slope_1_2, rows.front().slope_1_2);
}

// Section 3.2 / Figure 2 ------------------------------------------------------------

TEST_F(PaperClaims, EpDoublingIsCaseTwo) {
  EXPECT_EQ(model::classify_transition(sweep("EP", 2), sweep("EP", 4)),
            model::SpeedupCase::kPerfectOrSuper);
}

TEST_F(PaperClaims, MgFirstDoublingIsCaseOne) {
  EXPECT_EQ(model::classify_transition(sweep("MG", 2), sweep("MG", 4)),
            model::SpeedupCase::kPoorSpeedup);
}

TEST_F(PaperClaims, BtAndSpAreCaseOne) {
  EXPECT_EQ(model::classify_transition(sweep("BT", 4), sweep("BT", 9)),
            model::SpeedupCase::kPoorSpeedup);
  EXPECT_EQ(model::classify_transition(sweep("SP", 4), sweep("SP", 9)),
            model::SpeedupCase::kPoorSpeedup);
}

TEST_F(PaperClaims, CgFourToEightIsCaseOne) {
  EXPECT_EQ(model::classify_transition(sweep("CG", 4), sweep("CG", 8)),
            model::SpeedupCase::kPoorSpeedup);
}

TEST_F(PaperClaims, LuFourToEightIsCaseThreeWithQuotedNumbers) {
  const model::Curve c4 = sweep("LU", 4);
  const model::Curve c8 = sweep("LU", 8);
  EXPECT_EQ(model::classify_transition(c4, c8),
            model::SpeedupCase::kGoodSpeedup);
  // "The fastest gear on 8 nodes executes 72% faster than on 4 nodes,
  // but uses 12% more energy."
  EXPECT_NEAR(c4.fastest().time / c8.fastest().time, 1.72, 0.08);
  EXPECT_NEAR(c8.fastest().energy / c4.fastest().energy, 1.12, 0.04);
  // "Gear 4 on 8 nodes uses approximately the same energy as the fastest
  // gear on 4 nodes, but executes 50% more quickly."
  const auto& g4on8 = c8.at_gear(4);
  EXPECT_NEAR(g4on8.energy / c4.fastest().energy, 1.0, 0.04);
  EXPECT_NEAR(c4.fastest().time / g4on8.time, 1.5, 0.15);
}

// Figure 3 ---------------------------------------------------------------------------

TEST_F(PaperClaims, JacobiAdjacentCurvesAreAllCaseThree) {
  std::vector<model::Curve> curves;
  const workloads::Jacobi jacobi;
  for (int n : {2, 4, 6, 8, 10}) {
    curves.push_back(model::curve_from_runs(runner.gear_sweep(jacobi, n)));
  }
  for (std::size_t i = 1; i < curves.size(); ++i) {
    EXPECT_EQ(model::classify_transition(curves[i - 1], curves[i]),
              model::SpeedupCase::kGoodSpeedup)
        << curves[i - 1].nodes << "->" << curves[i].nodes;
  }
  // "executing in second or third gear on 6 nodes results in the program
  // finishing faster and using less energy than using first gear on 4".
  const auto& g1on4 = curves[1].at_gear(1);
  const auto& g2on6 = curves[2].at_gear(2);
  EXPECT_LE(g2on6.time.value(), g1on4.time.value());
  EXPECT_LE(g2on6.energy.value(), g1on4.energy.value());
}

// Figure 4 ---------------------------------------------------------------------------

TEST_F(PaperClaims, SyntheticGearFiveIsCheapAndBarelySlower) {
  const workloads::Synthetic synth;
  const auto rel = model::relative_to_fastest(
      model::curve_from_runs(runner.gear_sweep(synth, 1)));
  EXPECT_NEAR(rel[4].time_delta, 0.03, 0.015);    // ~3% penalty.
  EXPECT_NEAR(rel[4].energy_delta, -0.24, 0.025); // ~24% savings.
}

TEST_F(PaperClaims, SyntheticEightNodeGearFiveDominatesFourNodeGearOne) {
  const workloads::Synthetic synth;
  const model::Curve c4 =
      model::curve_from_runs(runner.gear_sweep(synth, 4));
  const model::Curve c8 =
      model::curve_from_runs(runner.gear_sweep(synth, 8));
  const auto& g1on4 = c4.at_gear(1);
  const auto& g5on8 = c8.at_gear(5);
  // "gear 5 on 8 nodes uses 80% of the energy and executes in half the
  // time" of gear 1 on 4 nodes.
  EXPECT_NEAR(g5on8.energy / g1on4.energy, 0.80, 0.05);
  EXPECT_NEAR(g5on8.time / g1on4.time, 0.5, 0.08);
}

// Cross-cutting invariants -------------------------------------------------------------

TEST_F(PaperClaims, SlowdownBoundAcrossTheSuiteAndNodeCounts) {
  // 1 <= T_{i+1}/T_i <= f_i/f_{i+1} on multi-node runs too.
  const auto& gears = runner.config().gears;
  for (const auto& e : workloads::nas_suite()) {
    const auto w = e.make();
    const int nodes = w->supports(8) ? 8 : 9;
    const model::Curve c = sweep(e.name, nodes);
    for (std::size_t g = 1; g < c.points.size(); ++g) {
      const double ratio = c.points[g].time / c.points[g - 1].time;
      // Multi-node runs tolerate ~1% inversions from contention timing
      // realignment; the upper bound is strict.
      EXPECT_GE(ratio, 1.0 - 0.015) << e.name;
      EXPECT_LE(ratio, gears.gear(g - 1).frequency / gears.gear(g).frequency +
                           1e-9)
          << e.name;
    }
  }
}

TEST_F(PaperClaims, CurvesBecomeMoreVerticalWithMoreNodes) {
  // Figure 5's qualitative claim, measured on actual runs: with more
  // nodes the communication-heavy codes spend a larger share of the run
  // off the CPU's critical path, so a slow gear's *time* penalty shrinks
  // — the curve steepens toward vertical.
  for (const char* name : {"CG", "SP"}) {
    const auto w = workloads::make_workload(name);
    const int small_n = w->supports(2) ? 2 : 4;
    const int large_n = w->supports(8) ? 8 : 9;
    const auto rel_small = model::relative_to_fastest(sweep(name, small_n));
    const auto rel_large = model::relative_to_fastest(sweep(name, large_n));
    EXPECT_LT(rel_large[4].time_delta, rel_small[4].time_delta) << name;
    EXPECT_LT(rel_large[4].energy_delta, 0.0) << name;
  }
}

TEST_F(PaperClaims, PowerCapScenario) {
  // The paper's motivation: under a heat limit, a power-scalable cluster
  // picks the fastest point under the cap.  With a cap below the fastest
  // gear's draw, some slower gear must be chosen.
  const model::Curve c = sweep("CG", 4);
  const Watts full_draw = c.fastest().energy / c.fastest().time;
  const auto pick = model::best_under_power_cap(c, full_draw * 0.9);
  ASSERT_TRUE(pick.has_value());
  EXPECT_GT(pick->gear_label, 1);
}

}  // namespace
}  // namespace gearsim
