// Property-based sweeps (parameterized gtest): invariants that must hold
// across the whole (workload x nodes x gear) space, not just the paper's
// quoted points.
#include <gtest/gtest.h>

#include <tuple>

#include "cluster/experiment.hpp"
#include "model/tradeoff.hpp"
#include "workloads/registry.hpp"

namespace gearsim {
namespace {

using Point = std::tuple<std::string, int>;  // (workload, nodes).

std::vector<Point> sweep_points() {
  std::vector<Point> points;
  for (const auto& e : workloads::all_workloads()) {
    const auto w = e.make();
    for (int n : workloads::paper_node_counts(*w, 9)) {
      points.emplace_back(e.name, n);
    }
  }
  return points;
}

class RunSweep : public ::testing::TestWithParam<Point> {
 protected:
  static cluster::ExperimentRunner& runner() {
    static cluster::ExperimentRunner instance(cluster::athlon_cluster());
    return instance;
  }
  static const std::vector<cluster::RunResult>& runs() {
    // One gear sweep per (workload, nodes), shared across the properties.
    static std::map<Point, std::vector<cluster::RunResult>> cache;
    const Point key = GetParam();
    auto it = cache.find(key);
    if (it == cache.end()) {
      const auto w = workloads::make_workload(std::get<0>(key));
      it = cache.emplace(key, runner().gear_sweep(*w, std::get<1>(key)))
               .first;
    }
    return it->second;
  }
};

TEST_P(RunSweep, TimeIsMonotoneInGear) {
  // On multiple nodes, contention timing can realign between gears and
  // shave a hair off a slower-gear run; the paper's "never speeds up"
  // bound is empirical, so allow a 1.5% tolerance beyond one node.
  const auto& rs = runs();
  const double slack = std::get<1>(GetParam()) > 1 ? 0.015 : 1e-9;
  for (std::size_t g = 1; g < rs.size(); ++g) {
    EXPECT_GE(rs[g].wall.value(), rs[g - 1].wall.value() * (1.0 - slack))
        << g;
  }
}

TEST_P(RunSweep, SlowdownBoundedByCycleTimeRatio) {
  const auto& rs = runs();
  const auto& gears = runner().config().gears;
  for (std::size_t g = 1; g < rs.size(); ++g) {
    EXPECT_LE(rs[g].wall / rs[0].wall, gears.cycle_time_ratio(g) + 1e-9) << g;
  }
}

TEST_P(RunSweep, EnergyDecompositionIsConsistent) {
  for (const auto& r : runs()) {
    EXPECT_GT(r.energy.value(), 0.0);
    EXPECT_NEAR(r.energy.value(), (r.active_energy + r.idle_energy).value(),
                1e-6 * r.energy.value());
    EXPECT_GE(r.active_energy.value(), 0.0);
    EXPECT_GE(r.idle_energy.value(), -1e-9);
  }
}

TEST_P(RunSweep, PerNodePowerWithinPhysicalEnvelope) {
  // Every node's average draw lies between the slowest-gear idle power
  // and the fastest-gear active power.
  const auto& gears = runner().config().gears;
  const cpu::PowerModel pm(runner().config().power, gears);
  const double lo = pm.idle_power(gears.size() - 1).value() - 1e-6;
  const double hi = pm.active_power(0, 1.0).value() + 1e-6;
  for (const auto& r : runs()) {
    for (const auto& ne : r.node_energy) {
      const double w = (ne.total / ne.total_time()).value();
      EXPECT_GE(w, lo);
      EXPECT_LE(w, hi);
    }
  }
}

TEST_P(RunSweep, ActiveIdleDecompositionConsistent) {
  for (const auto& r : runs()) {
    EXPECT_GE(r.breakdown.active_max.value(), -1e-9);
    EXPECT_GE(r.breakdown.idle_derived.value(), -1e-9);
    EXPECT_GE(r.breakdown.critical.value(), -1e-9);
    EXPECT_GE(r.breakdown.reducible.value(), -1e-9);
    EXPECT_NEAR((r.breakdown.critical + r.breakdown.reducible).value(),
                r.breakdown.active_max.value(), 1e-9);
    // Mean active time cannot exceed the max.
    EXPECT_LE(r.breakdown.active_mean.value(),
              r.breakdown.active_max.value() + 1e-9);
  }
}

TEST_P(RunSweep, IdleEnergyShareGrowsAtSlowerGears) {
  // At a slower gear compute stretches but communication does not, so the
  // *active* energy share cannot grow.
  const auto& rs = runs();
  const double share_fast = rs.front().active_energy / rs.front().energy;
  const double share_slow = rs.back().active_energy / rs.back().energy;
  EXPECT_GE(share_slow, share_fast - 0.02);
  (void)share_fast;
  (void)share_slow;
}

TEST_P(RunSweep, TracedCallsScaleWithRanks) {
  const auto& rs = runs();
  const auto [name, nodes] = GetParam();
  if (nodes > 1) {
    EXPECT_GT(rs[0].mpi_calls, 0u);
    EXPECT_EQ(rs[0].mpi_calls % static_cast<unsigned>(nodes), 0u)
        << "symmetric workloads trace the same call count per rank";
  }
}

TEST_P(RunSweep, ParetoFrontierIsNonEmptyAndIncludesFastest) {
  const model::Curve curve = model::curve_from_runs(runs());
  const auto frontier = model::pareto_frontier(curve);
  ASSERT_FALSE(frontier.empty());
  EXPECT_DOUBLE_EQ(curve.points[frontier.front()].time.value(),
                   curve.fastest().time.value());
}

std::string point_name(const ::testing::TestParamInfo<Point>& info) {
  std::string name =
      std::get<0>(info.param) + "_n" + std::to_string(std::get<1>(info.param));
  // gtest parameter names must be alphanumeric ("IS.B" -> "IS_B").
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, RunSweep,
                         ::testing::ValuesIn(sweep_points()), point_name);

// --- eager-threshold sensitivity: semantics must not depend on protocol -----------

class ProtocolSweep : public ::testing::TestWithParam<Bytes> {};

TEST_P(ProtocolSweep, JacobiResultIndependentOfEagerThreshold) {
  cluster::ClusterConfig config = cluster::athlon_cluster();
  config.mpi.eager_threshold = GetParam();
  cluster::ExperimentRunner runner(config);
  const auto jacobi = workloads::make_workload("Jacobi");
  const cluster::RunResult r = runner.run(*jacobi, 4, 0);
  // Reference: all-eager run.
  cluster::ExperimentRunner ref_runner(cluster::athlon_cluster());
  const cluster::RunResult ref = ref_runner.run(*jacobi, 4, 0);
  EXPECT_EQ(r.messages, ref.messages);
  // Synchronous sends shift timings only modestly for a halo exchange
  // (rendezvous serializes matches; interleaving changes can cut either
  // way by a fraction of a percent).
  EXPECT_GT(r.wall / ref.wall, 0.99);
  EXPECT_LT(r.wall / ref.wall, 1.15);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ProtocolSweep,
                         ::testing::Values(Bytes{0}, kilobytes(1),
                                           kilobytes(32), kilobytes(512),
                                           megabytes(64)));

// --- gear-table sensitivity: invariants hold on other ladders -----------------------

class GearLadderSweep : public ::testing::TestWithParam<int> {};

TEST_P(GearLadderSweep, BoundHoldsOnTruncatedLadders) {
  // Clusters with fewer gears (e.g. only the top k operating points)
  // still satisfy every invariant.
  const int k = GetParam();
  const cpu::GearTable full = cpu::athlon64_gears();
  std::vector<cpu::Gear> subset;
  for (int g = 0; g < k; ++g) subset.push_back(full.gear(g));
  cluster::ClusterConfig config = cluster::athlon_cluster();
  config.gears = cpu::GearTable(subset);
  cluster::ExperimentRunner runner(config);
  const auto runs = runner.gear_sweep(*workloads::make_workload("CG"), 2);
  ASSERT_EQ(runs.size(), static_cast<std::size_t>(k));
  for (std::size_t g = 1; g < runs.size(); ++g) {
    EXPECT_GE(runs[g].wall.value(), runs[g - 1].wall.value() - 1e-9);
    EXPECT_LE(runs[g].wall / runs[0].wall,
              config.gears.cycle_time_ratio(g) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(LadderSizes, GearLadderSweep,
                         ::testing::Values(2, 3, 4, 6));

}  // namespace
}  // namespace gearsim
