// Unit and property tests for the CPU substrate: gears, compute blocks,
// the timing model (incl. the paper's slowdown bound), and the power
// model's calibration envelope.
#include <gtest/gtest.h>

#include "cpu/compute.hpp"
#include "cpu/cpu_model.hpp"
#include "cpu/gear.hpp"
#include "cpu/power_model.hpp"

namespace gearsim::cpu {
namespace {

CpuModel athlon_cpu() { return CpuModel(CpuParams{}, athlon64_gears()); }

// --- gear table ---------------------------------------------------------------

TEST(GearTable, Athlon64Ladder) {
  const GearTable gears = athlon64_gears();
  ASSERT_EQ(gears.size(), 6u);
  EXPECT_EQ(gears.fastest().label, 1);
  EXPECT_DOUBLE_EQ(gears.fastest().frequency.value(), 2e9);
  EXPECT_DOUBLE_EQ(gears.slowest().frequency.value(), 0.8e9);
  EXPECT_DOUBLE_EQ(gears.fastest().voltage.value(), 1.5);
  EXPECT_DOUBLE_EQ(gears.slowest().voltage.value(), 1.0);
}

TEST(GearTable, CycleTimeRatio) {
  const GearTable gears = athlon64_gears();
  EXPECT_DOUBLE_EQ(gears.cycle_time_ratio(0), 1.0);
  EXPECT_NEAR(gears.cycle_time_ratio(1), 2000.0 / 1800.0, 1e-12);
  EXPECT_DOUBLE_EQ(gears.cycle_time_ratio(5), 2.5);
}

TEST(GearTable, RejectsNonMonotoneFrequencies) {
  EXPECT_THROW(GearTable({{1, megahertz(1000), volts(1.2)},
                          {2, megahertz(1500), volts(1.1)}}),
               ContractError);
}

TEST(GearTable, RejectsVoltageIncreaseAtSlowerGear) {
  EXPECT_THROW(GearTable({{1, megahertz(2000), volts(1.2)},
                          {2, megahertz(1500), volts(1.4)}}),
               ContractError);
}

TEST(GearTable, RejectsEmptyAndOutOfRange) {
  EXPECT_THROW(GearTable({}), ContractError);
  const GearTable g = athlon64_gears();
  EXPECT_THROW((void)g.gear(6), ContractError);
}

TEST(GearTable, FixedGearHasOneEntry) {
  const GearTable g = fixed_gear(megahertz(1200), volts(1.6));
  EXPECT_EQ(g.size(), 1u);
  EXPECT_DOUBLE_EQ(g.cycle_time_ratio(0), 1.0);
}

// --- compute blocks --------------------------------------------------------------

TEST(ComputeBlock, UpmAndScaling) {
  const ComputeBlock b = block_from_upm(50.0, 1000.0);
  EXPECT_DOUBLE_EQ(b.uops, 50000.0);
  EXPECT_DOUBLE_EQ(b.upm(), 50.0);
  const ComputeBlock half = b.scaled(0.5);
  EXPECT_DOUBLE_EQ(half.upm(), 50.0);  // UPM is scale-invariant.
  EXPECT_DOUBLE_EQ(half.l2_misses, 500.0);
}

TEST(ComputeBlock, AdditionPreservesCriticalWork) {
  const ComputeBlock a = block_from_upm(100.0, 10.0, 0.5);
  const ComputeBlock b = block_from_upm(100.0, 10.0, 0.0);
  const ComputeBlock sum = a + b;
  EXPECT_DOUBLE_EQ(sum.uops, 2000.0);
  EXPECT_DOUBLE_EQ(sum.critical_uops(),
                   a.critical_uops() + b.critical_uops());
}

TEST(ComputeBlock, UpmRequiresMisses) {
  const ComputeBlock pure_cpu{1000.0, 0.0};
  EXPECT_THROW((void)pure_cpu.upm(), ContractError);
}

TEST(ComputeBlock, OverlapReducesCriticalUops) {
  const ComputeBlock b = block_from_upm(100.0, 10.0, 0.25);
  EXPECT_DOUBLE_EQ(b.critical_uops(), 750.0);
}

// --- timing model ---------------------------------------------------------------

TEST(CpuModel, PureCpuBlockScalesWithFrequency) {
  const CpuModel m = athlon_cpu();
  const ComputeBlock b{1e9, 0.0};
  const Seconds t1 = m.execute_time(b, 0);
  const Seconds t6 = m.execute_time(b, 5);
  EXPECT_NEAR(t6 / t1, 2.5, 1e-12);  // Exactly the cycle-time ratio.
}

TEST(CpuModel, PureMemoryBlockIsFrequencyInvariant) {
  const CpuModel m = athlon_cpu();
  const ComputeBlock b{0.0, 1e6};
  EXPECT_DOUBLE_EQ(m.execute_time(b, 0).value(), m.execute_time(b, 5).value());
}

TEST(CpuModel, SlowdownBoundHolds) {
  // The paper's bound: 1 <= T_{i+1}/T_i <= f_i/f_{i+1}, for any mix.
  const CpuModel m = athlon_cpu();
  for (double upm : {1.0, 8.6, 49.5, 73.5, 844.0, 1e6}) {
    const ComputeBlock b = block_from_upm(upm, 1e5);
    for (std::size_t g = 1; g < m.gears().size(); ++g) {
      const double ratio = m.execute_time(b, g) / m.execute_time(b, g - 1);
      const double cap =
          m.gears().gear(g - 1).frequency / m.gears().gear(g).frequency;
      EXPECT_GE(ratio, 1.0) << "upm=" << upm << " gear=" << g;
      EXPECT_LE(ratio, cap + 1e-12) << "upm=" << upm << " gear=" << g;
    }
  }
}

TEST(CpuModel, ObservedUpcRisesAtLowerGearsForMemoryBoundCode) {
  // Paper Section 3.1: "In memory-bound applications, the UPC increases
  // as frequency decreases."
  const CpuModel m = athlon_cpu();
  const ComputeBlock cg = block_from_upm(8.6, 1e6);
  EXPECT_GT(m.observed_upc(cg, 5), m.observed_upc(cg, 0));
  // And is nearly flat for CPU-bound code.
  const ComputeBlock ep = block_from_upm(844.0, 1e3);
  EXPECT_NEAR(m.observed_upc(ep, 5) / m.observed_upc(ep, 0), 1.0, 0.05);
}

TEST(CpuModel, CpuBoundFractionOrdering) {
  const CpuModel m = athlon_cpu();
  const ComputeBlock ep = block_from_upm(844.0, 1e3);
  const ComputeBlock cg = block_from_upm(8.6, 1e3);
  EXPECT_GT(m.cpu_bound_fraction(ep, 0), 0.9);
  EXPECT_LT(m.cpu_bound_fraction(cg, 0), 0.2);
}

TEST(CpuModel, KappaRoundTrip) {
  const CpuModel m = athlon_cpu();
  for (double upm : {8.6, 73.5, 844.0}) {
    EXPECT_NEAR(m.upm_for_kappa(m.kappa(upm)), upm, 1e-9);
  }
}

TEST(CpuModel, SlowdownMatchesClosedForm) {
  // T_g/T_1 = (kappa f1/fg + 1) / (kappa + 1).
  const CpuModel m = athlon_cpu();
  const double upm = 50.0;
  const double kappa = m.kappa(upm);
  const ComputeBlock b = block_from_upm(upm, 1e5);
  for (std::size_t g = 0; g < m.gears().size(); ++g) {
    const double f_ratio = m.gears().cycle_time_ratio(g);
    const double expected = (kappa * f_ratio + 1.0) / (kappa + 1.0);
    EXPECT_NEAR(m.slowdown(b, g), expected, 1e-12);
  }
}

TEST(CpuModel, OverlapReducesFrequencySensitivity) {
  const CpuModel m = athlon_cpu();
  const ComputeBlock plain = block_from_upm(73.5, 1e5, 0.0);
  const ComputeBlock mlp = block_from_upm(73.5, 1e5, 0.75);
  EXPECT_GT(m.slowdown(plain, 5), m.slowdown(mlp, 5));
  EXPECT_GE(m.slowdown(mlp, 5), 1.0);
}

TEST(CpuModel, EmptyBlockTakesNoTime) {
  const CpuModel m = athlon_cpu();
  EXPECT_DOUBLE_EQ(m.execute_time(ComputeBlock{}, 0).value(), 0.0);
}

// --- power model -----------------------------------------------------------------

PowerModel athlon_power() { return PowerModel(PowerParams{}, athlon64_gears()); }

TEST(PowerModel, TopGearSystemPowerInPaperEnvelope) {
  // Paper: 140-150 W system power at the fastest gear.
  const PowerModel p = athlon_power();
  const double w = p.active_power(0, 1.0).value();
  EXPECT_GE(w, 140.0);
  EXPECT_LE(w, 150.0);
}

TEST(PowerModel, CpuShareInPaperEnvelope) {
  // Paper: the CPU consumes ~45-55% of system power.
  const PowerModel p = athlon_power();
  const double share = p.cpu_share(0, 1.0);
  EXPECT_GE(share, 0.45);
  EXPECT_LE(share, 0.55);
}

TEST(PowerModel, ActivePowerDecreasesWithGear) {
  const PowerModel p = athlon_power();
  for (std::size_t g = 1; g < 6; ++g) {
    EXPECT_LT(p.active_power(g, 1.0), p.active_power(g - 1, 1.0)) << g;
  }
}

TEST(PowerModel, IdlePowerDecreasesWithGear) {
  const PowerModel p = athlon_power();
  for (std::size_t g = 1; g < 6; ++g) {
    EXPECT_LT(p.idle_power(g), p.idle_power(g - 1)) << g;
  }
}

TEST(PowerModel, IdleBelowActiveAtEveryGear) {
  const PowerModel p = athlon_power();
  for (std::size_t g = 0; g < 6; ++g) {
    EXPECT_LT(p.idle_power(g), p.active_power(g, 0.0)) << g;
  }
}

TEST(PowerModel, BusyFractionRaisesPower) {
  const PowerModel p = athlon_power();
  EXPECT_LT(p.active_power(0, 0.0), p.active_power(0, 1.0));
  EXPECT_THROW((void)p.active_power(0, 1.5), ContractError);
}

TEST(PowerModel, DynamicTermScalesWithVSquaredF) {
  // With zero base and zero static power, active power at full activity
  // and stall floor 1 is exactly P_dyn * (V/V1)^2 (f/f1).
  PowerParams params;
  params.base = watts(0.0);
  params.cpu_static = watts(0.0);
  params.cpu_dynamic = watts(100.0);
  params.stall_activity_floor = 1.0;
  const PowerModel p(params, athlon64_gears());
  const GearTable gears = athlon64_gears();
  for (std::size_t g = 0; g < gears.size(); ++g) {
    const double v = gears.gear(g).voltage / gears.fastest().voltage;
    const double f = gears.gear(g).frequency / gears.fastest().frequency;
    EXPECT_NEAR(p.active_power(g, 1.0).value(), 100.0 * v * v * f, 1e-9) << g;
  }
}

TEST(PowerModel, RejectsBadParams) {
  PowerParams params;
  params.idle_activity = 1.5;
  EXPECT_THROW(PowerModel(params, athlon64_gears()), ContractError);
  params = PowerParams{};
  params.stall_activity_floor = -0.1;
  EXPECT_THROW(PowerModel(params, athlon64_gears()), ContractError);
}

// --- parameterized: the headline CG/EP calibration points ------------------------

struct GearCase {
  double upm;
  std::size_t gear;
  double min_delay, max_delay;  // Fractional slowdown envelope.
};

class SlowdownEnvelope : public ::testing::TestWithParam<GearCase> {};

TEST_P(SlowdownEnvelope, WithinPaperBand) {
  const GearCase c = GetParam();
  const CpuModel m = athlon_cpu();
  const ComputeBlock b = block_from_upm(c.upm, 1e5);
  const double delay = m.slowdown(b, c.gear) - 1.0;
  EXPECT_GE(delay, c.min_delay);
  EXPECT_LE(delay, c.max_delay);
}

INSTANTIATE_TEST_SUITE_P(
    PaperPoints, SlowdownEnvelope,
    ::testing::Values(
        GearCase{8.6, 1, 0.0, 0.02},     // CG gear 2: <1% (we allow 2%).
        GearCase{8.6, 4, 0.07, 0.13},    // CG gear 5: ~10%.
        GearCase{844.0, 1, 0.09, 0.112}, // EP gear 2: ~11%.
        GearCase{844.0, 5, 1.3, 1.5}));  // EP gear 6: near cycle ratio 2.5x.

}  // namespace
}  // namespace gearsim::cpu
