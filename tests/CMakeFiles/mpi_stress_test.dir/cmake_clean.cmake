file(REMOVE_RECURSE
  "CMakeFiles/mpi_stress_test.dir/mpi_stress_test.cpp.o"
  "CMakeFiles/mpi_stress_test.dir/mpi_stress_test.cpp.o.d"
  "mpi_stress_test"
  "mpi_stress_test.pdb"
  "mpi_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
