file(REMOVE_RECURSE
  "CMakeFiles/nas_extra_test.dir/nas_extra_test.cpp.o"
  "CMakeFiles/nas_extra_test.dir/nas_extra_test.cpp.o.d"
  "nas_extra_test"
  "nas_extra_test.pdb"
  "nas_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
