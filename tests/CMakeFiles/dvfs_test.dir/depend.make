# Empty dependencies file for dvfs_test.
# This may be replaced when dependencies are built.
