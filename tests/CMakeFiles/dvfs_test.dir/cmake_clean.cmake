file(REMOVE_RECURSE
  "CMakeFiles/dvfs_test.dir/dvfs_test.cpp.o"
  "CMakeFiles/dvfs_test.dir/dvfs_test.cpp.o.d"
  "dvfs_test"
  "dvfs_test.pdb"
  "dvfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
