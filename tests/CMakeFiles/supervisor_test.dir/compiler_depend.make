# Empty compiler generated dependencies file for supervisor_test.
# This may be replaced when dependencies are built.
