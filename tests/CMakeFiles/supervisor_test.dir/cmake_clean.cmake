file(REMOVE_RECURSE
  "CMakeFiles/supervisor_test.dir/supervisor_test.cpp.o"
  "CMakeFiles/supervisor_test.dir/supervisor_test.cpp.o.d"
  "supervisor_test"
  "supervisor_test.pdb"
  "supervisor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supervisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
