file(REMOVE_RECURSE
  "CMakeFiles/knobs_test.dir/knobs_test.cpp.o"
  "CMakeFiles/knobs_test.dir/knobs_test.cpp.o.d"
  "knobs_test"
  "knobs_test.pdb"
  "knobs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knobs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
