# Empty compiler generated dependencies file for knobs_test.
# This may be replaced when dependencies are built.
