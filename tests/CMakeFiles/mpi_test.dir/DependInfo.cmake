
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mpi_test.cpp" "tests/CMakeFiles/mpi_test.dir/mpi_test.cpp.o" "gcc" "tests/CMakeFiles/mpi_test.dir/mpi_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/report/CMakeFiles/gearsim_report.dir/DependInfo.cmake"
  "/root/repo/src/sched/CMakeFiles/gearsim_sched.dir/DependInfo.cmake"
  "/root/repo/src/model/CMakeFiles/gearsim_model.dir/DependInfo.cmake"
  "/root/repo/src/workloads/CMakeFiles/gearsim_workloads.dir/DependInfo.cmake"
  "/root/repo/src/exec/CMakeFiles/gearsim_exec.dir/DependInfo.cmake"
  "/root/repo/src/cluster/CMakeFiles/gearsim_cluster.dir/DependInfo.cmake"
  "/root/repo/src/faults/CMakeFiles/gearsim_faults.dir/DependInfo.cmake"
  "/root/repo/src/trace/CMakeFiles/gearsim_trace.dir/DependInfo.cmake"
  "/root/repo/src/mpi/CMakeFiles/gearsim_mpi.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/gearsim_net.dir/DependInfo.cmake"
  "/root/repo/src/power/CMakeFiles/gearsim_power.dir/DependInfo.cmake"
  "/root/repo/src/cpu/CMakeFiles/gearsim_cpu.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/gearsim_sim.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/gearsim_obs.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/gearsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
