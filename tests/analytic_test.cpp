// Tests for the analytic (counter-only) curve predictor and the trace
// CSV exporter.
#include <gtest/gtest.h>

#include <sstream>

#include "cluster/experiment.hpp"
#include "model/analytic.hpp"
#include <cstdio>
#include <fstream>

#include "trace/export.hpp"
#include "trace/timeline.hpp"
#include "util/csv.hpp"
#include "workloads/nas.hpp"
#include "workloads/registry.hpp"

namespace gearsim {
namespace {

cpu::CpuModel athlon_cpu() {
  return cpu::CpuModel(cpu::CpuParams{}, cpu::athlon64_gears());
}
cpu::PowerModel athlon_power() {
  return cpu::PowerModel(cpu::PowerParams{}, cpu::athlon64_gears());
}

TEST(Analytic, CurveHasOnePointPerGear) {
  const model::Curve c = model::analytic_single_node_curve(
      athlon_cpu(), athlon_power(), 50.0, seconds(100.0));
  ASSERT_EQ(c.points.size(), 6u);
  EXPECT_DOUBLE_EQ(c.points[0].time.value(), 100.0);
  for (std::size_t g = 1; g < 6; ++g) {
    EXPECT_GT(c.points[g].time.value(), c.points[g - 1].time.value());
  }
}

TEST(Analytic, MatchesSimulationForEveryNasBenchmark) {
  // The analytic curve from (UPM, overlap, T1) must coincide with the
  // measured single-node gear sweep — they share the same physics; only
  // per-rank jitter (a pure scale factor on one node) separates them.
  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  const auto cpu_model = athlon_cpu();
  const auto power_model = athlon_power();
  for (const auto& entry : workloads::nas_suite()) {
    const auto workload = entry.make();
    const auto* nas =
        dynamic_cast<const workloads::NasSkeleton*>(workload.get());
    const auto measured =
        model::curve_from_runs(runner.gear_sweep(*workload, 1));
    const model::Curve predicted = model::analytic_single_node_curve(
        cpu_model, power_model, nas->params().upm, measured.points[0].time,
        nas->params().overlap);
    for (std::size_t g = 0; g < 6; ++g) {
      EXPECT_NEAR(predicted.points[g].time / measured.points[g].time, 1.0,
                  0.01)
          << entry.name << " gear " << g + 1;
      EXPECT_NEAR(predicted.points[g].energy / measured.points[g].energy, 1.0,
                  0.01)
          << entry.name << " gear " << g + 1;
    }
  }
}

TEST(Analytic, AdviseGearRespectsTheDelayBudget) {
  const auto cpu_model = athlon_cpu();
  // CG-class memory pressure: 10% budget admits gear 5 (paper: ~10%
  // delay at gear 5).
  EXPECT_EQ(model::advise_gear_for_delay(cpu_model, 8.6, 0.10), 4u);
  // EP-class compute: even gear 2 costs ~11%, so a 5% budget keeps gear 1.
  EXPECT_EQ(model::advise_gear_for_delay(cpu_model, 844.0, 0.05), 0u);
  // Unlimited budget: slowest gear.
  EXPECT_EQ(model::advise_gear_for_delay(cpu_model, 844.0, 10.0), 5u);
}

TEST(Analytic, PredictedEnergyDeltaMatchesHeadlines) {
  const auto cpu_model = athlon_cpu();
  const auto power_model = athlon_power();
  // CG gear 2: ~-9.5%; EP gear 2: ~-2%.
  EXPECT_NEAR(model::predicted_energy_delta(cpu_model, power_model, 8.6, 1),
              -0.093, 0.01);
  EXPECT_NEAR(model::predicted_energy_delta(cpu_model, power_model, 844.0, 1),
              -0.023, 0.01);
}

TEST(Analytic, MoreMemoryPressureMeansDeeperSavings) {
  const auto cpu_model = athlon_cpu();
  const auto power_model = athlon_power();
  double prev = 1.0;
  for (double upm : {844.0, 79.6, 49.5, 8.6, 2.5}) {
    const double delta =
        model::predicted_energy_delta(cpu_model, power_model, upm, 4);
    EXPECT_LT(delta, prev) << upm;
    prev = delta;
  }
}

// --- trace export ------------------------------------------------------------------

TEST(TraceExport, CsvContainsEveryRecord) {
  trace::Tracer tracer(2);
  tracer.on_enter(0, mpi::CallType::kSend, seconds(1.0), 512, 1);
  tracer.on_exit(0, mpi::CallType::kSend, seconds(1.5));
  tracer.on_enter(1, mpi::CallType::kRecv, seconds(0.5), 0, 0);
  tracer.on_exit(1, mpi::CallType::kRecv, seconds(2.0));
  std::ostringstream os;
  trace::export_csv(tracer, os);
  const std::string csv = os.str();
  EXPECT_EQ(csv.rfind("rank,call,enter_s,exit_s,duration_s,bytes,peer", 0),
            0u);
  EXPECT_NE(csv.find("0,Send,1,1.5,0.5,512,1"), std::string::npos);
  EXPECT_NE(csv.find("1,Recv,0.5,2,1.5,0,0"), std::string::npos);
}

TEST(TraceExport, FaultDetailFieldsSurviveACsvRoundTrip) {
  // Bugfix regression: fault-event details are free-form text and may
  // contain commas, quotes, or newlines; un-escaped they shear the row.
  trace::Tracer tracer(1);
  tracer.on_enter(0, mpi::CallType::kSend, seconds(1.0), 64, 0);
  tracer.on_exit(0, mpi::CallType::kSend, seconds(1.5));
  trace::FaultLog faults;
  faults.push_back({trace::FaultEventKind::kLinkDrop, 2, seconds(3.0),
                    "dst=3, retries=2"});
  faults.push_back({trace::FaultEventKind::kNodeCrash, 1, seconds(4.0),
                    "reason=\"kernel panic\", fatal"});
  std::ostringstream os;
  trace::export_csv(tracer, os, faults);
  const std::string csv = os.str();

  // Parse every line back: each row must have exactly 7 or 8 fields and
  // the detail field must come back verbatim.
  std::istringstream lines(csv);
  std::string line;
  std::vector<std::vector<std::string>> rows;
  while (std::getline(lines, line)) rows.push_back(parse_csv_line(line));
  ASSERT_EQ(rows.size(), 4u);  // Header + 1 MPI record + 2 fault rows.
  for (const auto& row : rows) {
    ASSERT_GE(row.size(), 7u);
    ASSERT_LE(row.size(), 8u);
  }
  EXPECT_EQ(rows[2][1], "fault:link_drop");
  EXPECT_EQ(rows[2][7], "dst=3, retries=2");
  EXPECT_EQ(rows[3][7], "reason=\"kernel panic\", fatal");
}

TEST(TraceExport, EndToEndFromASimulatedRun) {
  cluster::ClusterConfig config = cluster::athlon_cluster();
  cluster::ExperimentRunner runner(config);
  // RunResult does not expose the tracer, so run a small world manually.
  sim::Engine engine;
  net::Network network(net::ethernet_100mbps(), 2);
  mpi::World world(engine, network, 2);
  trace::Tracer tracer(2);
  world.add_observer(&tracer);
  for (int r = 0; r < 2; ++r) {
    sim::Process& proc =
        engine.spawn("r" + std::to_string(r), [&world, r](sim::Process&) {
          mpi::Comm comm(world, r);
          comm.barrier();
          comm.allreduce(64);
        });
    world.bind_rank(r, proc);
  }
  engine.run();
  std::ostringstream os;
  trace::export_csv(tracer, os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("Barrier"), std::string::npos);
  EXPECT_NE(csv.find("Allreduce"), std::string::npos);
  // Header + 4 records.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
}

TEST(Timeline, RendersOneRowPerRankWithColoredCalls) {
  trace::Tracer tracer(2);
  tracer.on_enter(0, mpi::CallType::kSend, seconds(0.2), 1024, 1);
  tracer.on_exit(0, mpi::CallType::kSend, seconds(0.3));
  tracer.on_enter(1, mpi::CallType::kRecv, seconds(0.0), 0, 0);
  tracer.on_exit(1, mpi::CallType::kRecv, seconds(0.35));
  tracer.on_enter(1, mpi::CallType::kBarrier, seconds(0.5), 0, -1);
  tracer.on_exit(1, mpi::CallType::kBarrier, seconds(0.6));
  const std::string svg =
      trace::render_timeline(tracer, seconds(1.0), "demo");
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find(">r0<"), std::string::npos);
  EXPECT_NE(svg.find(">r1<"), std::string::npos);
  EXPECT_NE(svg.find("#e4572e"), std::string::npos);  // Send.
  EXPECT_NE(svg.find("#17a398"), std::string::npos);  // Recv.
  EXPECT_NE(svg.find("#7c5cbf"), std::string::npos);  // Collective.
  EXPECT_NE(svg.find("<title>Send [0.2000, 0.3000] s</title>"),
            std::string::npos);
}

TEST(Timeline, RunnerWritesTimelineSvg) {
  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  cluster::RunOptions options;
  options.timeline_svg_path = "/tmp/gearsim_timeline_test.svg";
  (void)runner.run(*workloads::make_workload("MG"), 4, options);
  std::ifstream in(options.timeline_svg_path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first.rfind("<svg", 0), 0u);
  std::remove(options.timeline_svg_path.c_str());
}

TEST(Timeline, RejectsEmptyRun) {
  trace::Tracer tracer(1);
  EXPECT_THROW((void)trace::render_timeline(tracer, Seconds{}, "x"),
               ContractError);
}

}  // namespace
}  // namespace gearsim
