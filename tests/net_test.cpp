// Unit tests for the network model: latency/bandwidth arithmetic, NIC
// serialization, incast and backplane contention, presets.
#include <gtest/gtest.h>

#include "net/network.hpp"

namespace gearsim::net {
namespace {

NetworkParams quiet() {
  NetworkParams p;
  p.latency = microseconds(100.0);
  p.link_bandwidth = 10e6;      // 10 MB/s for round numbers.
  p.backplane_bandwidth = 80e6;
  return p;
}

TEST(Network, UncontendedTransferIsLatencyPlusSerialization) {
  Network net(quiet(), 4);
  const Seconds t = net.transfer(0, 1, 1'000'000, seconds(0.0));
  // 100 us latency + 0.1 s wire.
  EXPECT_NEAR(t.value(), 0.1001, 1e-9);
  EXPECT_NEAR(net.uncontended_time(1'000'000).value(), 0.1001, 1e-9);
}

TEST(Network, ZeroByteMessageCostsLatencyOnly) {
  Network net(quiet(), 2);
  EXPECT_NEAR(net.transfer(0, 1, 0, seconds(0.0)).value(), 1e-4, 1e-12);
}

TEST(Network, SenderNicSerializesBackToBackMessages) {
  Network net(quiet(), 4);
  const Seconds t1 = net.transfer(0, 1, 1'000'000, seconds(0.0));
  const Seconds t2 = net.transfer(0, 2, 1'000'000, seconds(0.0));
  // The second message waits for the first to clear the TX link.
  EXPECT_NEAR(t2.value() - t1.value(), 0.1, 1e-9);
}

TEST(Network, IncastSerializesAtTheReceiver) {
  Network net(quiet(), 4);
  const Seconds a = net.transfer(1, 0, 1'000'000, seconds(0.0));
  const Seconds b = net.transfer(2, 0, 1'000'000, seconds(0.0));
  const Seconds c = net.transfer(3, 0, 1'000'000, seconds(0.0));
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  // Three 0.1 s messages into one RX link: the last finishes ~0.3 s in.
  EXPECT_NEAR(c.value(), 0.3001, 1e-3);
}

TEST(Network, DisjointPairsDoNotInterfereBelowBackplaneLimit) {
  Network net(quiet(), 4);
  const Seconds a = net.transfer(0, 1, 1'000'000, seconds(0.0));
  const Seconds b = net.transfer(2, 3, 1'000'000, seconds(0.0));
  // The 80 MB/s fabric admits both 10 MB/s flows with a small offset.
  EXPECT_NEAR(a.value(), b.value(), 0.02);
}

TEST(Network, BackplaneSaturationCreatesClusterWideContention) {
  NetworkParams p = quiet();
  p.backplane_bandwidth = p.link_bandwidth;  // Hub-like shared medium.
  Network net(p, 4);
  (void)net.transfer(0, 1, 1'000'000, seconds(0.0));
  const Seconds b = net.transfer(2, 3, 1'000'000, seconds(0.0));
  // The disjoint pair now queues behind the first flow's fabric share.
  EXPECT_GT(b.value(), 0.19);
}

TEST(Network, ReservationsPersistAcrossCalls) {
  Network net(quiet(), 2);
  (void)net.transfer(0, 1, 10'000'000, seconds(0.0));  // 1 s of TX.
  const Seconds t = net.transfer(0, 1, 0, seconds(0.5));
  EXPECT_GT(t.value(), 1.0);  // Injected mid-transfer, queued behind it.
}

TEST(Network, LateInjectionSeesIdleNetwork) {
  Network net(quiet(), 2);
  (void)net.transfer(0, 1, 1'000'000, seconds(0.0));
  const Seconds t = net.transfer(0, 1, 1'000'000, seconds(10.0));
  EXPECT_NEAR(t.value(), 10.1001, 1e-9);
}

TEST(Network, CountsTraffic) {
  Network net(quiet(), 2);
  (void)net.transfer(0, 1, 500, seconds(0.0));
  (void)net.transfer(1, 0, 700, seconds(0.0));
  EXPECT_EQ(net.messages_carried(), 2u);
  EXPECT_EQ(net.bytes_carried(), 1200u);
}

TEST(Network, JitterIsDeterministicPerSeed) {
  NetworkParams p = quiet();
  p.latency_jitter = 0.5;
  Network a(p, 2);
  Network b(p, 2);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.transfer(0, 1, 1000, seconds(i)).value(),
                     b.transfer(0, 1, 1000, seconds(i)).value());
  }
}

TEST(Network, JitterPerturbsLatency) {
  NetworkParams p = quiet();
  p.latency_jitter = 0.5;
  Network net(p, 2);
  bool saw_different = false;
  const double base = net.uncontended_time(0).value();
  for (int i = 0; i < 20; ++i) {
    const Seconds t = net.transfer(0, 1, 0, seconds(10.0 * i));
    if (std::abs((t.value() - 10.0 * i) - base) > 1e-9) saw_different = true;
  }
  EXPECT_TRUE(saw_different);
}

TEST(Network, RejectsInvalidEndpoints) {
  Network net(quiet(), 2);
  EXPECT_THROW((void)net.transfer(0, 0, 1, seconds(0.0)), ContractError);
  EXPECT_THROW((void)net.transfer(0, 5, 1, seconds(0.0)), ContractError);
}

TEST(Network, RejectsBadParams) {
  NetworkParams p = quiet();
  p.backplane_bandwidth = p.link_bandwidth / 2;
  EXPECT_THROW(Network(p, 2), ContractError);
  p = quiet();
  p.link_bandwidth = 0.0;
  EXPECT_THROW(Network(p, 2), ContractError);
}

TEST(LinkFaults, RejectsBadWindows) {
  Network net(quiet(), 4);
  LinkFaultWindow w;
  w.loss_probability = 1.5;
  EXPECT_THROW(net.set_link_faults({w}, 1), ContractError);
  w = LinkFaultWindow{};
  w.backoff = 0.5;
  EXPECT_THROW(net.set_link_faults({w}, 1), ContractError);
  w = LinkFaultWindow{};
  w.src = 9;  // Out of range for 4 nodes.
  EXPECT_THROW(net.set_link_faults({w}, 1), ContractError);
  w = LinkFaultWindow{};
  w.latency_factor = 0.0;
  EXPECT_THROW(net.set_link_faults({w}, 1), ContractError);
}

TEST(LinkFaults, LossesAreDeterministicPerSeed) {
  LinkFaultWindow w;
  w.loss_probability = 0.5;
  w.retransmit_timeout = milliseconds(1.0);
  Network a(quiet(), 4);
  Network b(quiet(), 4);
  a.set_link_faults({w}, 7);
  b.set_link_faults({w}, 7);
  for (int i = 0; i < 50; ++i) {
    const Seconds now = seconds(0.01 * i);
    EXPECT_EQ(a.transfer(0, 1, 10'000, now).value(),
              b.transfer(0, 1, 10'000, now).value());
  }
  EXPECT_EQ(a.retransmissions(), b.retransmissions());
  EXPECT_GT(a.retransmissions(), 0u);
}

TEST(LinkFaults, NonMatchingWindowLeavesTransfersUntouched) {
  // A window on a different link (and one entirely in the past) must not
  // change a single arrival time relative to the fault-free network.
  LinkFaultWindow other_link;
  other_link.src = 2;
  other_link.dst = 3;
  other_link.loss_probability = 1.0;
  LinkFaultWindow expired;
  expired.from = seconds(0.0);
  expired.until = seconds(0.5);
  expired.loss_probability = 1.0;
  Network clean(quiet(), 4);
  Network faulty(quiet(), 4);
  faulty.set_link_faults({other_link, expired}, 3);
  for (int i = 0; i < 20; ++i) {
    const Seconds now = seconds(1.0 + 0.01 * i);
    EXPECT_EQ(clean.transfer(0, 1, 10'000, now).value(),
              faulty.transfer(0, 1, 10'000, now).value());
  }
  EXPECT_EQ(faulty.retransmissions(), 0u);
}

TEST(LinkFaults, CertainLossRetransmitsWithBackoff) {
  // p=1 loses every attempt until the retry cap: the message still goes
  // through (the final attempt always wins) after the full backoff sum.
  LinkFaultWindow w;
  w.loss_probability = 1.0;
  w.retransmit_timeout = milliseconds(1.0);
  w.backoff = 2.0;
  w.max_retries = 3;
  Network clean(quiet(), 2);
  Network faulty(quiet(), 2);
  faulty.set_link_faults({w}, 1);
  const Seconds base = clean.transfer(0, 1, 10'000, seconds(0.0));
  const Seconds lossy = faulty.transfer(0, 1, 10'000, seconds(0.0));
  // Backoff 1 + 2 + 4 ms on top of the clean arrival.
  EXPECT_NEAR(lossy.value() - base.value(), 7e-3, 1e-9);
  EXPECT_EQ(faulty.retransmissions(), 3u);
}

TEST(LinkFaults, LatencySpikeDelaysArrival) {
  LinkFaultWindow w;
  w.latency_factor = 10.0;  // No loss, just a slow window.
  Network clean(quiet(), 2);
  Network faulty(quiet(), 2);
  faulty.set_link_faults({w}, 1);
  const Seconds base = clean.transfer(0, 1, 0, seconds(0.0));
  const Seconds spiked = faulty.transfer(0, 1, 0, seconds(0.0));
  // Zero-byte message: pure latency, multiplied by the spike factor.
  EXPECT_NEAR(spiked.value(), 10.0 * base.value(), 1e-12);
  EXPECT_EQ(faulty.retransmissions(), 0u);
}

TEST(LinkFaults, ClearingWindowsRestoresFaultFreeBehavior) {
  Network clean(quiet(), 2);
  Network faulty(quiet(), 2);
  LinkFaultWindow w;
  w.loss_probability = 1.0;
  w.retransmit_timeout = milliseconds(1.0);
  faulty.set_link_faults({w}, 1);
  (void)faulty.transfer(0, 1, 10'000, seconds(0.0));
  faulty.set_link_faults({}, 1);
  const Seconds now = seconds(10.0);
  EXPECT_EQ(clean.transfer(0, 1, 10'000, now).value(),
            faulty.transfer(0, 1, 10'000, now).value());
}

TEST(Presets, PaperEthernetIsRoughly100Mbps) {
  const NetworkParams p = ethernet_100mbps();
  EXPECT_GT(p.link_bandwidth, 10e6);
  EXPECT_LT(p.link_bandwidth, 12.5e6);
  EXPECT_DOUBLE_EQ(p.latency_jitter, 0.0);
}

TEST(Presets, XeonClusterIsJittery) {
  EXPECT_GT(shared_xeon_network().latency_jitter, 0.0);
}

}  // namespace
}  // namespace gearsim::net
