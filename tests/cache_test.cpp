// Unit tests for the set-associative LRU cache simulator and the modeled
// Athlon-64 hierarchy.
#include <gtest/gtest.h>

#include "cpu/cache.hpp"
#include "util/random.hpp"

namespace gearsim::cpu {
namespace {

CacheConfig tiny() { return CacheConfig{/*size=*/1024, /*line=*/64, /*assoc=*/2}; }

TEST(CacheSim, GeometryDerivation) {
  const CacheSim c(tiny());
  EXPECT_EQ(c.num_sets(), 8u);  // 1024 / (64 * 2).
}

TEST(CacheSim, FirstTouchMissesThenHits) {
  CacheSim c(tiny());
  EXPECT_FALSE(c.access(0));  // Compulsory miss.
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(63));  // Same line.
  EXPECT_FALSE(c.access(64)); // Next line.
  EXPECT_EQ(c.stats().accesses, 4u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(CacheSim, LruEvictionWithinSet) {
  CacheSim c(tiny());  // 8 sets, 2 ways; lines A, B, C map to set 0 if
                       // their line index % 8 == 0.
  const std::uint64_t a = 0;
  const std::uint64_t b = 8 * 64;
  const std::uint64_t d = 16 * 64;
  c.access(a);
  c.access(b);       // Set 0 now holds {a, b}.
  c.access(a);       // a is MRU; b is LRU.
  c.access(d);       // Evicts b.
  EXPECT_TRUE(c.access(d));
  EXPECT_TRUE(c.access(a));
  // b was evicted; probing it is a miss (and reinserts it, evicting the
  // now-LRU d — every probe mutates recency state).
  EXPECT_FALSE(c.access(b));
  EXPECT_FALSE(c.access(d));
}

TEST(CacheSim, FullyAssociativeBehavesAsLruList) {
  CacheSim c({/*size=*/256, /*line=*/64, /*assoc=*/4});  // One set.
  for (std::uint64_t i = 0; i < 4; ++i) c.access(i * 64);
  EXPECT_TRUE(c.access(0));           // All resident.
  c.access(4 * 64);                   // Evicts LRU = line 1.
  EXPECT_TRUE(c.access(0));
  EXPECT_FALSE(c.access(1 * 64));
}

TEST(CacheSim, SequentialStreamMissesOncePerLine) {
  CacheSim c({kilobytes(512), 64, 16});
  const std::uint64_t misses = c.access_range(0, kilobytes(64));
  EXPECT_EQ(misses, kilobytes(64) / 64);
  c.reset_stats();
  c.access_range(0, kilobytes(64));  // Fits: all hits.
  EXPECT_EQ(c.stats().misses, 0u);
}

TEST(CacheSim, WorkingSetLargerThanCapacityThrashes) {
  CacheSim c({kilobytes(64), 64, 2});
  // Stream 1 MB twice: second pass still misses (capacity).
  c.access_range(0, megabytes(1));
  c.reset_stats();
  c.access_range(0, megabytes(1));
  EXPECT_GT(c.stats().miss_rate(), 0.9);
}

TEST(CacheSim, FlushInvalidatesEverything) {
  CacheSim c(tiny());
  c.access(0);
  c.flush();
  EXPECT_FALSE(c.access(0));
}

TEST(CacheSim, RejectsBadGeometry) {
  EXPECT_THROW(CacheSim({1000, 64, 2}), ContractError);   // Not whole sets.
  EXPECT_THROW(CacheSim({1024, 60, 2}), ContractError);   // Line not 2^k.
  EXPECT_THROW(CacheSim({1024, 64, 0}), ContractError);   // Zero ways.
}

TEST(CacheSim, MissRateRequiresAccesses) {
  CacheSim c(tiny());
  EXPECT_THROW((void)c.stats().miss_rate(), ContractError);
}

TEST(CacheHierarchy, L1FiltersL2) {
  CacheHierarchy h = athlon64_caches();
  EXPECT_TRUE(h.access(0));   // Miss to memory (cold).
  EXPECT_FALSE(h.access(0));  // L1 hit.
  EXPECT_EQ(h.l2().stats().accesses, 1u);  // Only the L1 miss probed L2.
}

TEST(CacheHierarchy, L2CatchesL1CapacityMisses) {
  CacheHierarchy h = athlon64_caches();
  // Touch 256 KB: fits L2 (512 KB), exceeds L1 (64 KB).
  for (std::uint64_t a = 0; a < kilobytes(256); a += 64) h.access(a);
  h.l1().reset_stats();
  h.l2().reset_stats();
  std::uint64_t mem_misses = 0;
  for (std::uint64_t a = 0; a < kilobytes(256); a += 64) {
    if (h.access(a)) ++mem_misses;
  }
  EXPECT_EQ(mem_misses, 0u);                    // L2 holds it all.
  EXPECT_GT(h.l1().stats().misses, 2000u);      // L1 thrashes.
}

TEST(CacheHierarchy, RandomFarAccessesMissBothLevels) {
  CacheHierarchy h = athlon64_caches();
  Rng rng(3);
  // Warm up, then measure.
  for (int i = 0; i < 20000; ++i) h.access(rng.below(megabytes(256)));
  h.l1().reset_stats();
  h.l2().reset_stats();
  int misses = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    if (h.access(rng.below(megabytes(256)))) ++misses;
  }
  EXPECT_GT(static_cast<double>(misses) / probes, 0.95);
}

}  // namespace
}  // namespace gearsim::cpu
