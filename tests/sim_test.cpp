// Unit tests for the discrete-event kernel: event ordering, time
// semantics, process scheduling, deadlock detection, and the golden
// event-order hashes that pin the dispatch order across kernel changes.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/experiment.hpp"
#include "exec/sweep_runner.hpp"
#include "sim/engine.hpp"
#include "workloads/nas.hpp"

namespace gearsim::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.push(seconds(3.0), [&] { fired.push_back(3); });
  q.push(seconds(1.0), [&] { fired.push_back(1); });
  q.push(seconds(2.0), [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsAreFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.push(seconds(1.0), [&, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, TimeAdvancesToEventTimestamps) {
  Engine e;
  std::vector<double> seen;
  e.schedule_at(seconds(1.5), [&] { seen.push_back(e.now().value()); });
  e.schedule_at(seconds(0.5), [&] { seen.push_back(e.now().value()); });
  e.run();
  EXPECT_EQ(seen, (std::vector<double>{0.5, 1.5}));
  EXPECT_DOUBLE_EQ(e.now().value(), 1.5);
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine e;
  double fired_at = -1.0;
  e.schedule_at(seconds(2.0), [&] {
    e.schedule_after(seconds(3.0), [&] { fired_at = e.now().value(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Engine, RejectsPastEvents) {
  Engine e;
  e.schedule_at(seconds(1.0), [&] {
    EXPECT_THROW(e.schedule_at(seconds(0.5), [] {}), ContractError);
  });
  e.run();
}

TEST(Engine, RunUntilStopsAtHorizon) {
  Engine e;
  int fired = 0;
  e.schedule_at(seconds(1.0), [&] { ++fired; });
  e.schedule_at(seconds(10.0), [&] { ++fired; });
  e.run_until(seconds(5.0));
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(e.now().value(), 1.0);
  e.run();  // Drain the rest.
  EXPECT_EQ(fired, 2);
}

TEST(Engine, CountsExecutedEvents) {
  Engine e;
  for (int i = 0; i < 10; ++i) e.schedule_at(seconds(i), [] {});
  e.run();
  EXPECT_EQ(e.events_executed(), 10u);
}

TEST(Process, DelayAdvancesSimTimeOnly) {
  Engine e;
  std::vector<double> stamps;
  e.spawn("p", [&](Process& p) {
    stamps.push_back(p.now().value());
    p.delay(seconds(2.0));
    stamps.push_back(p.now().value());
    p.delay(seconds(0.5));
    stamps.push_back(p.now().value());
  });
  e.run();
  EXPECT_EQ(stamps, (std::vector<double>{0.0, 2.0, 2.5}));
}

TEST(Process, ZeroDelayIsAllowed) {
  Engine e;
  bool done = false;
  e.spawn("p", [&](Process& p) {
    p.delay(seconds(0.0));
    done = true;
  });
  e.run();
  EXPECT_TRUE(done);
}

TEST(Process, NegativeDelayThrows) {
  Engine e;
  e.spawn("p", [&](Process& p) {
    EXPECT_THROW(p.delay(seconds(-1.0)), ContractError);
  });
  e.run();
}

TEST(Process, TwoProcessesInterleaveDeterministically) {
  Engine e;
  std::vector<std::string> order;
  e.spawn("a", [&](Process& p) {
    order.push_back("a0");
    p.delay(seconds(1.0));
    order.push_back("a1");
    p.delay(seconds(2.0));  // Wakes at t=3.
    order.push_back("a3");
  });
  e.spawn("b", [&](Process& p) {
    order.push_back("b0");
    p.delay(seconds(2.0));
    order.push_back("b2");
  });
  e.run();
  EXPECT_EQ(order, (std::vector<std::string>{"a0", "b0", "a1", "b2", "a3"}));
}

TEST(Process, BlockAndWakeHandshake) {
  Engine e;
  std::vector<std::string> order;
  Process& consumer = e.spawn("consumer", [&](Process& p) {
    order.push_back("consumer-blocks");
    p.block();
    order.push_back("consumer-woken@" + std::to_string(p.now().value()));
  });
  e.spawn("producer", [&](Process& p) {
    p.delay(seconds(5.0));
    order.push_back("producer-wakes");
    consumer.wake();
  });
  e.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "consumer-blocks");
  EXPECT_EQ(order[1], "producer-wakes");
  EXPECT_EQ(order[2], "consumer-woken@5.000000");
}

TEST(Process, WakeOnNonBlockedThrows) {
  Engine e;
  Process& a = e.spawn("a", [](Process& p) { p.delay(seconds(1.0)); });
  e.spawn("b", [&](Process&) { EXPECT_THROW(a.wake(), ContractError); });
  e.run();
}

TEST(Engine, DeadlockIsDetected) {
  Engine e;
  e.spawn("stuck", [](Process& p) { p.block(); });
  EXPECT_THROW(e.run(), SimulationError);
}

TEST(Engine, DeadlockMessageNamesProcesses) {
  Engine e;
  e.spawn("rank0", [](Process& p) { p.block(); });
  e.spawn("rank1", [](Process& p) { p.block(); });
  try {
    e.run();
    FAIL() << "expected SimulationError";
  } catch (const SimulationError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("rank0"), std::string::npos);
    EXPECT_NE(what.find("rank1"), std::string::npos);
  }
}

TEST(Engine, ProcessExceptionPropagates) {
  Engine e;
  e.spawn("boom", [](Process& p) {
    p.delay(seconds(1.0));
    throw std::runtime_error("kaboom");
  });
  EXPECT_THROW(e.run(), std::runtime_error);
}

TEST(Engine, ManyProcessesFinish) {
  Engine e;
  int finished = 0;
  for (int i = 0; i < 64; ++i) {
    e.spawn("p" + std::to_string(i), [&, i](Process& p) {
      p.delay(seconds(0.001 * i));
      ++finished;
    });
  }
  e.run();
  EXPECT_EQ(finished, 64);
  EXPECT_EQ(e.process_count(), 64u);
}

TEST(Engine, TeardownWithLiveProcessesDoesNotHang) {
  // An engine destroyed while a process is blocked must terminate the
  // process thread cleanly (no join hang, no crash).
  auto e = std::make_unique<Engine>();
  e->spawn("forever", [](Process& p) { p.block(); });
  try {
    e->run();
  } catch (const SimulationError&) {
    // Expected deadlock; now destroy with the process still blocked.
  }
  e.reset();
  SUCCEED();
}

TEST(Engine, MidRunThrowPropagatesExactlyOnceWithCleanTeardown) {
  // One process throws mid-run while others are still live (one blocked,
  // one delayed far in the future).  Exactly one exception must escape
  // Engine::run, and destroying the engine afterwards must unwind the
  // survivors without hanging or crashing.
  auto e = std::make_unique<Engine>();
  int bodies_completed = 0;
  e->spawn("blocked", [&](Process& p) {
    p.block();
    ++bodies_completed;  // Never reached: nobody wakes it.
  });
  e->spawn("slow", [&](Process& p) {
    p.delay(seconds(100.0));
    ++bodies_completed;
  });
  e->spawn("boom", [](Process& p) {
    p.delay(seconds(1.0));
    throw std::runtime_error("kaboom");
  });
  int exceptions = 0;
  try {
    e->run();
  } catch (const std::runtime_error& err) {
    ++exceptions;
    EXPECT_STREQ(err.what(), "kaboom");
  }
  EXPECT_EQ(exceptions, 1);
  EXPECT_EQ(bodies_completed, 0);
  e.reset();  // Survivors unwound via ProcessTerminated; must not hang.
  SUCCEED();
}

TEST(Engine, TerminateProcessesUnwindsEarlyAndIsIdempotent) {
  // terminate_processes() lets a caller unwind live process threads while
  // the objects their stacks reference are still alive (the engine
  // destructor would otherwise do it last).  Stack unwinding must run the
  // process-frame destructors; calling it twice is harmless.
  Engine e;
  bool guard_destroyed = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  e.spawn("parked", [&](Process& p) {
    Sentinel s{&guard_destroyed};
    p.block();
  });
  try {
    e.run();
  } catch (const SimulationError&) {
    // Deadlock: the process is parked forever.
  }
  EXPECT_FALSE(guard_destroyed);
  e.terminate_processes();
  EXPECT_TRUE(guard_destroyed);
  e.terminate_processes();  // Idempotent.
}

TEST(Engine, TerminateProcessesDestroysPendingEventCaptures) {
  // Regression test (run under ASAN in CI): terminate_processes must also
  // destroy the *pending events* — their pooled captures can reference
  // objects (worlds, meters, rank state) that the caller tears down right
  // after the early unwind, so destroying them any later than this is a
  // use-after-free.  The shared_ptr canary pins the destruction point.
  Engine e;
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  e.spawn("parked", [](Process& p) { p.block(); });
  e.schedule_at(seconds(100.0), [token] { (void)*token; });
  token.reset();
  EXPECT_FALSE(watch.expired());  // The queue owns the capture.
  e.terminate_processes();
  EXPECT_TRUE(watch.expired());  // Destroyed at the defined point.
  // The engine is reusable afterwards: the cleared queue must accept and
  // run fresh events (pool and bands were reset, not just emptied).
  int fired = 0;
  e.schedule_at(e.now() + seconds(1.0), [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
}

TEST(Process, StateTransitions) {
  Engine e;
  Process& p = e.spawn("p", [](Process& self) { self.delay(seconds(1.0)); });
  EXPECT_EQ(p.state(), Process::State::kReady);
  e.run();
  EXPECT_EQ(p.state(), Process::State::kFinished);
  EXPECT_TRUE(p.finished());
  EXPECT_EQ(p.name(), "p");
}

// ---------------------------------------------------------------------------
// Event-order determinism
//
// The engine folds every dispatched (time, seq) pair into an FNV-1a
// fingerprint (Engine::order_hash).  These goldens were recorded from the
// NAS workloads on the paper's Athlon cluster *before* the pooled-heap /
// batched-submission kernel rewrite; matching them proves the rewrite
// changed no simulated result — not even the relative order of
// simultaneous events.  If a deliberate scheduling-semantics change ever
// breaks them, re-record and explain the order change in the PR.
// ---------------------------------------------------------------------------

struct GoldenCase {
  const char* name;
  int nodes;
  std::size_t gear;
  std::uint64_t hash;
};

std::unique_ptr<cluster::Workload> make_nas(const std::string& name) {
  if (name == "CG") return std::make_unique<workloads::NasCg>();
  if (name == "EP") return std::make_unique<workloads::NasEp>();
  if (name == "LU") return std::make_unique<workloads::NasLu>();
  return std::make_unique<workloads::NasBt>();
}

/// A serial-engine run at `gear`: the golden order hashes fingerprint
/// the global dispatch order, which only the serial engine defines, so
/// these tests pin engine_threads = 1 against any GEARSIM_ENGINE_THREADS
/// ambient setting (the CI engine-threads matrix leg runs with 4).
cluster::RunResult run_serial(const cluster::ExperimentRunner& runner,
                              const cluster::Workload& wl, int nodes,
                              std::size_t gear) {
  cluster::RunOptions options;
  options.gear_index = gear;
  options.engine_threads = 1;
  return runner.run(wl, nodes, options);
}

TEST(EngineDeterminism, GoldenEventOrderHashes) {
  const cluster::ExperimentRunner runner(cluster::athlon_cluster());
  const std::vector<GoldenCase> goldens = {
      {"CG", 8, 0, 0x88c377bcb5fff41aULL},
      {"CG", 8, 2, 0x2472f37b43336b62ULL},
      {"EP", 8, 0, 0x2719932f5f75222aULL},
      {"EP", 8, 2, 0x22e075ee8de81bfdULL},
      {"LU", 8, 0, 0xd2cce699ae9b1ef4ULL},
      {"LU", 8, 2, 0xe424ed52919b9b26ULL},
      {"BT", 9, 0, 0x1b4f8cecdee85551ULL},
      {"BT", 9, 2, 0xd868b71733f4f4fbULL},
  };
  for (const GoldenCase& g : goldens) {
    const auto wl = make_nas(g.name);
    const cluster::RunResult r = run_serial(runner, *wl, g.nodes, g.gear);
    EXPECT_EQ(r.event_order_hash, g.hash)
        << g.name << " nodes=" << g.nodes << " gear=" << g.gear;
    EXPECT_NE(r.event_order_hash, 0U);
  }
}

TEST(EngineDeterminism, RepeatedRunsHashIdentically) {
  const cluster::ExperimentRunner runner(cluster::athlon_cluster());
  const workloads::NasCg cg;
  const cluster::RunResult a = run_serial(runner, cg, 8, 0);
  const cluster::RunResult b = run_serial(runner, cg, 8, 0);
  EXPECT_EQ(a.event_order_hash, b.event_order_hash);
  EXPECT_EQ(a.wall.value(), b.wall.value());
  // Different inputs must fingerprint differently (sanity that the hash
  // actually observes the schedule).
  const cluster::RunResult c = run_serial(runner, cg, 8, 2);
  EXPECT_NE(a.event_order_hash, c.event_order_hash);
}

TEST(EngineDeterminism, SweepWorkersDoNotPerturbEventOrder) {
  // The same points, serial and through the parallel sweep executor with
  // two workers, must be event-for-event identical — each point owns its
  // whole simulation, so worker scheduling can never leak into it.
  const workloads::NasCg cg;
  const cluster::ExperimentRunner direct(cluster::athlon_cluster());
  const cluster::RunResult serial0 = run_serial(direct, cg, 8, 0);
  const cluster::RunResult serial2 = run_serial(direct, cg, 8, 2);

  exec::SweepOptions options;
  options.jobs = 2;
  options.engine_threads = 1;
  const exec::SweepRunner sweep(cluster::athlon_cluster(), options);
  const std::vector<exec::SweepPoint> points = {
      {&cg, 8, 0, 0, nullptr},
      {&cg, 8, 2, 0, nullptr},
  };
  const std::vector<cluster::RunResult> results = sweep.run(points);
  ASSERT_EQ(results.size(), 2U);
  EXPECT_EQ(results[0].event_order_hash, serial0.event_order_hash);
  EXPECT_EQ(results[1].event_order_hash, serial2.event_order_hash);
}

}  // namespace
}  // namespace gearsim::sim
