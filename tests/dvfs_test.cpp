// Tests for the DVFS policy framework: mid-run gear switching, per-rank
// static plans, comm downshift, and the node-bottleneck planner.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "cluster/dvfs.hpp"
#include "model/gear_data.hpp"
#include "workloads/jacobi.hpp"
#include "workloads/registry.hpp"

namespace gearsim::cluster {
namespace {

ExperimentRunner make_runner(double imbalance = 0.01) {
  ClusterConfig config = athlon_cluster();
  config.load_imbalance = imbalance;
  return ExperimentRunner(config);
}

// --- policy objects -------------------------------------------------------------

TEST(Policies, UniformGearNamesAndValues) {
  const UniformGear p(3);
  EXPECT_EQ(p.name(), "uniform(g4)");
  EXPECT_EQ(p.compute_gear(5), 3u);
  EXPECT_EQ(p.comm_gear(5), 3u);
  EXPECT_FALSE(p.shifts_during_comm());
}

TEST(Policies, PerRankGearBounds) {
  const PerRankGear p({0, 2, 5});
  EXPECT_EQ(p.compute_gear(1), 2u);
  EXPECT_THROW((void)p.compute_gear(3), ContractError);
  EXPECT_THROW(PerRankGear({}), ContractError);
}

TEST(Policies, CommDownshiftShiftsOnlyWhenGearsDiffer) {
  const CommDownshift shifting(0, 5);
  EXPECT_TRUE(shifting.shifts_during_comm());
  EXPECT_EQ(shifting.comm_gear(0), 5u);
  const CommDownshift degenerate(2, 2);
  EXPECT_FALSE(degenerate.shifts_during_comm());
  EXPECT_THROW(CommDownshift(4, 1), ContractError);  // Comm faster: invalid.
}

// --- set_gear ------------------------------------------------------------------

TEST(SetGear, PolicyRunChargesSwitchLatency) {
  auto runner = make_runner();
  const auto cg = workloads::make_workload("CG");
  CommDownshift policy(0, 5);
  RunOptions options;
  options.policy = &policy;
  const RunResult shifted = runner.run(*cg, 4, options);
  const RunResult base = runner.run(*cg, 4, 0);
  EXPECT_GT(shifted.gear_switches, 0u);
  EXPECT_EQ(base.gear_switches, 0u);
  // Transitions cost time: the shifted run cannot be faster than the
  // uniform fastest run.
  EXPECT_GE(shifted.wall.value(), base.wall.value());
}

TEST(SetGear, DowshiftDuringCommSavesEnergyOnCommBoundCode) {
  // CG on 8 nodes idles heavily; parking blocked ranks at gear 6 must cut
  // energy versus uniform gear 1.
  auto runner = make_runner();
  const auto cg = workloads::make_workload("CG");
  CommDownshift policy(0, 5);
  RunOptions options;
  options.policy = &policy;
  const RunResult shifted = runner.run(*cg, 8, options);
  const RunResult base = runner.run(*cg, 8, 0);
  EXPECT_LT(shifted.energy.value(), base.energy.value());
  // And the time cost stays modest (slack absorbs the transitions).
  EXPECT_LT(shifted.wall / base.wall, 1.10);
}

TEST(SetGear, DownshiftBarelyAffectsComputeBoundCode) {
  auto runner = make_runner();
  const auto ep = workloads::make_workload("EP");
  CommDownshift policy(0, 5);
  RunOptions options;
  options.policy = &policy;
  const RunResult shifted = runner.run(*ep, 8, options);
  const RunResult base = runner.run(*ep, 8, 0);
  // EP's 3 tiny allreduces: a handful of switches, negligible deltas.
  EXPECT_LT(shifted.gear_switches, 60u);
  EXPECT_NEAR(shifted.wall / base.wall, 1.0, 0.01);
  EXPECT_NEAR(shifted.energy / base.energy, 1.0, 0.01);
}

TEST(SetGear, PerRankGearsProduceMixedPower) {
  auto runner = make_runner(0.0);
  const workloads::Jacobi jacobi;
  PerRankGear policy({0, 5, 0, 5});
  RunOptions options;
  options.policy = &policy;
  const RunResult r = runner.run(jacobi, 4, options);
  // Slow ranks draw less energy than fast ranks.
  EXPECT_LT(r.node_energy[1].total.value(), r.node_energy[0].total.value());
  EXPECT_LT(r.node_energy[3].total.value(), r.node_energy[2].total.value());
  // Mixed gears slow the whole run to ~the slowest rank's pace.
  const RunResult fast = runner.run(jacobi, 4, 0);
  EXPECT_GT(r.wall.value(), fast.wall.value());
}

TEST(SetGear, SwitchLatencyZeroIsFree) {
  ClusterConfig config = athlon_cluster();
  config.gear_switch_latency = Seconds{};
  ExperimentRunner free_runner(config);
  ExperimentRunner paid_runner(athlon_cluster());
  const auto cg = workloads::make_workload("CG");
  CommDownshift policy(0, 5);
  RunOptions options;
  options.policy = &policy;
  const Seconds free_wall = free_runner.run(*cg, 4, options).wall;
  const Seconds paid_wall = paid_runner.run(*cg, 4, options).wall;
  EXPECT_LT(free_wall.value(), paid_wall.value());
}

// --- node-bottleneck planner ------------------------------------------------------

TEST(BottleneckPlanner, NoImbalanceMeansEveryoneFast) {
  auto runner = make_runner(0.0);
  const auto ep = workloads::make_workload("EP");
  const RunResult profile = runner.run(*ep, 4, 0);
  const std::vector<double> ladder = {1.0, 1.1, 1.25, 1.4, 1.6, 2.4};
  const PerRankGear plan = plan_node_bottleneck(profile, ladder);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(plan.compute_gear(r), 0u) << r;
}

TEST(BottleneckPlanner, SlackRanksGetSlowerGears) {
  // Manufacture a profile with one busy rank and three slack ranks.
  RunResult profile;
  profile.breakdown.ranks.resize(4);
  profile.breakdown.ranks[0].active = seconds(100.0);
  profile.breakdown.ranks[1].active = seconds(80.0);
  profile.breakdown.ranks[2].active = seconds(60.0);
  profile.breakdown.ranks[3].active = seconds(40.0);
  profile.breakdown.active_max = seconds(100.0);
  const std::vector<double> ladder = {1.0, 1.11, 1.25, 1.43, 1.67, 2.5};
  const PerRankGear plan = plan_node_bottleneck(profile, ladder, 1.0);
  EXPECT_EQ(plan.compute_gear(0), 0u);  // Critical rank stays fast.
  EXPECT_EQ(plan.compute_gear(1), 2u);  // Budget 1.25.
  EXPECT_EQ(plan.compute_gear(2), 3u);  // Budget 1.666..., just under 1.67.
  EXPECT_EQ(plan.compute_gear(3), 5u);  // Budget 2.5.
}

TEST(BottleneckPlanner, SafetyShrinksTheBudget) {
  RunResult profile;
  profile.breakdown.ranks.resize(2);
  profile.breakdown.ranks[0].active = seconds(100.0);
  profile.breakdown.ranks[1].active = seconds(60.0);
  profile.breakdown.active_max = seconds(100.0);
  const std::vector<double> ladder = {1.0, 1.11, 1.25, 1.43, 1.67, 2.5};
  const PerRankGear cautious = plan_node_bottleneck(profile, ladder, 0.5);
  const PerRankGear bold = plan_node_bottleneck(profile, ladder, 1.0);
  EXPECT_LE(cautious.compute_gear(1), bold.compute_gear(1));
}

TEST(BottleneckPlanner, RejectsBadInput) {
  RunResult profile;
  profile.breakdown.ranks.resize(1);
  profile.breakdown.ranks[0].active = seconds(1.0);
  profile.breakdown.active_max = seconds(1.0);
  const std::vector<double> decreasing = {1.5, 1.0};
  EXPECT_THROW(plan_node_bottleneck(profile, decreasing), ContractError);
  const std::vector<double> ladder = {1.0, 1.2};
  EXPECT_THROW(plan_node_bottleneck(profile, ladder, 0.0), ContractError);
  EXPECT_THROW(plan_node_bottleneck(RunResult{}, ladder), ContractError);
}

TEST(BottleneckPlanner, EndToEndSavesEnergyOnImbalancedRun) {
  // Inflate the imbalance so the plan has real slack to harvest.
  auto runner = make_runner(0.20);
  const auto lu = workloads::make_workload("LU");
  const RunResult profile = runner.run(*lu, 8, 0);
  const model::GearData gear_data = model::measure_gear_data(runner, *lu);
  std::vector<double> ladder;
  for (const auto& g : gear_data.gears) ladder.push_back(g.slowdown);
  PerRankGear plan = plan_node_bottleneck(profile, ladder, 0.9);
  RunOptions options;
  options.policy = &plan;
  const RunResult planned = runner.run(*lu, 8, options);
  EXPECT_LT(planned.energy.value(), profile.energy.value());
  EXPECT_LT(planned.wall / profile.wall, 1.06);
}

// --- slack-adaptive controller (dynamic future work #2) ----------------------------

TEST(SlackAdaptive, ValidatesParams) {
  SlackAdaptive::Params p;
  p.lo = 0.5;
  p.hi = 0.2;
  EXPECT_THROW(SlackAdaptive(p, 4), ContractError);
  p = SlackAdaptive::Params{};
  p.window = 0;
  EXPECT_THROW(SlackAdaptive(p, 4), ContractError);
  p = SlackAdaptive::Params{};
  p.initial_gear = 6;
  EXPECT_THROW(SlackAdaptive(p, 4), ContractError);
  EXPECT_THROW(SlackAdaptive(SlackAdaptive::Params{}, 0), ContractError);
}

TEST(SlackAdaptive, StepsDownUnderSustainedSlack) {
  SlackAdaptive::Params p;
  p.window = 4;
  SlackAdaptive ctl(p, 1);
  // 50% blocked share across each window: should step down once per
  // window until the slowest gear.
  double t = 0.0;
  for (int w = 0; w < 8; ++w) {
    for (int i = 0; i < 4; ++i) {
      ctl.on_blocking_enter(0, mpi::CallType::kAllreduce, 0, seconds(t));
      t += 0.5;
      ctl.on_blocking_exit(0, mpi::CallType::kAllreduce, 0, seconds(t),
                           seconds(0.5));
      t += 0.5;
    }
  }
  EXPECT_EQ(ctl.compute_gear(0), 5u);  // Hit the floor after >= 5 windows.
}

TEST(SlackAdaptive, StepsBackUpWhenSlackDisappears) {
  SlackAdaptive::Params p;
  p.window = 2;
  p.initial_gear = 3;
  SlackAdaptive ctl(p, 1);
  // Negligible blocking: controller should climb back to gear 1.
  double t = 0.0;
  for (int w = 0; w < 6; ++w) {
    for (int i = 0; i < 2; ++i) {
      ctl.on_blocking_enter(0, mpi::CallType::kAllreduce, 0, seconds(t));
      t += 0.001;
      ctl.on_blocking_exit(0, mpi::CallType::kAllreduce, 0, seconds(t),
                           seconds(0.001));
      t += 1.0;
    }
  }
  EXPECT_EQ(ctl.compute_gear(0), 0u);
}

TEST(SlackAdaptive, HoldsSteadyInTheDeadband) {
  SlackAdaptive::Params p;
  p.window = 2;
  p.initial_gear = 2;
  SlackAdaptive ctl(p, 1);
  // ~18% blocked share (the window closes at the last exit, so the
  // trailing compute stretch is excluded) sits between lo=5% and hi=25%.
  double t = 0.0;
  for (int w = 0; w < 6; ++w) {
    for (int i = 0; i < 2; ++i) {
      ctl.on_blocking_enter(0, mpi::CallType::kAllreduce, 0, seconds(t));
      t += 0.10;
      ctl.on_blocking_exit(0, mpi::CallType::kAllreduce, 0, seconds(t),
                           seconds(0.10));
      t += 0.90;
    }
  }
  EXPECT_EQ(ctl.compute_gear(0), 2u);
}

TEST(SlackAdaptive, EndToEndConvergesPerRank) {
  // Strong imbalance: slack ranks should settle at slower gears than the
  // bottleneck rank, saving energy with bounded slowdown.
  ClusterConfig config = athlon_cluster();
  config.load_imbalance = 0.25;
  ExperimentRunner runner(config);
  const auto lu = workloads::make_workload("LU");
  const RunResult base = runner.run(*lu, 8, 0);

  SlackAdaptive adaptive(SlackAdaptive::Params{}, 8);
  RunOptions options;
  options.policy = &adaptive;
  const RunResult tuned = runner.run(*lu, 8, options);

  EXPECT_LT(tuned.energy.value(), base.energy.value());
  EXPECT_LT(tuned.wall / base.wall, 1.10);
  const auto gears = adaptive.final_gears();
  // At least one rank found slack to exploit; not every rank did.
  EXPECT_GT(*std::max_element(gears.begin(), gears.end()), 0u);
}

TEST(SlackAdaptive, LeavesComputeBoundRunsAlone) {
  ExperimentRunner runner(athlon_cluster());
  const auto ep = workloads::make_workload("EP");
  SlackAdaptive adaptive(SlackAdaptive::Params{}, 8);
  RunOptions options;
  options.policy = &adaptive;
  const RunResult tuned = runner.run(*ep, 8, options);
  const RunResult base = runner.run(*ep, 8, 0);
  // EP blocks only in its three final allreduces: no window completes,
  // no shifts, identical time to within the driver's overhead.
  EXPECT_NEAR(tuned.wall / base.wall, 1.0, 0.005);
  for (std::size_t g : adaptive.final_gears()) EXPECT_EQ(g, 0u);
}

TEST(SlackAdaptive, SavesEnergyOnCommBoundCg) {
  ExperimentRunner runner(athlon_cluster());
  const auto cg = workloads::make_workload("CG");
  SlackAdaptive adaptive(SlackAdaptive::Params{}, 8);
  RunOptions options;
  options.policy = &adaptive;
  const RunResult tuned = runner.run(*cg, 8, options);
  const RunResult base = runner.run(*cg, 8, 0);
  EXPECT_LT(tuned.energy / base.energy, 0.95);
  EXPECT_LT(tuned.wall / base.wall, 1.05);
}

TEST(SlackAdaptive, PositiveFeedbackPathologyOnSymmetricSync) {
  // SP synchronizes every iteration; once every rank downshifts, the
  // blocked share stays high (everyone waits together), so the naive
  // controller never climbs back — a large slowdown.  This documents the
  // limitation the Adagio-style designs fix.
  ExperimentRunner runner(athlon_cluster());
  const auto sp = workloads::make_workload("SP");
  SlackAdaptive adaptive(SlackAdaptive::Params{}, 9);
  RunOptions options;
  options.policy = &adaptive;
  const RunResult tuned = runner.run(*sp, 9, options);
  const RunResult base = runner.run(*sp, 9, 0);
  EXPECT_GT(tuned.wall / base.wall, 1.2);
  const auto gears = adaptive.final_gears();
  int downshifted = 0;
  for (std::size_t g : gears) {
    if (g > 0) ++downshifted;
  }
  EXPECT_GT(downshifted, 4);  // Most ranks stuck at slower gears.
}

TEST(TraceExportOption, WritesCsvFromARun) {
  ExperimentRunner runner(athlon_cluster());
  RunOptions options;
  options.trace_csv_path = "/tmp/gearsim_run_trace.csv";
  const RunResult r =
      runner.run(*workloads::make_workload("MG"), 2, options);
  std::ifstream in(options.trace_csv_path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "rank,call,enter_s,exit_s,duration_s,bytes,peer");
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, r.mpi_calls);
  std::remove(options.trace_csv_path.c_str());
}

}  // namespace
}  // namespace gearsim::cluster
