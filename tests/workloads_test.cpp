// Tests for the workload skeletons: characterization invariants (UPM,
// Amdahl shares), registry behavior, per-benchmark structure, and the
// speedup/shape properties the paper reports.
#include <gtest/gtest.h>

#include <map>

#include "cluster/experiment.hpp"
#include "workloads/characterize.hpp"
#include "workloads/jacobi.hpp"
#include "workloads/nas.hpp"
#include "workloads/registry.hpp"
#include "workloads/synthetic.hpp"

namespace gearsim::workloads {
namespace {

cluster::ExperimentRunner athlon() {
  return cluster::ExperimentRunner(cluster::athlon_cluster());
}

// --- characterization helpers -----------------------------------------------------

TEST(Characterize, BlockForTimeHitsTheTarget) {
  const cpu::CpuModel m(cpu::CpuParams{}, cpu::athlon64_gears());
  for (double upm : {8.6, 73.5, 844.0}) {
    const cpu::ComputeBlock b = block_for_time(m, upm, seconds(100.0));
    EXPECT_NEAR(m.execute_time(b, 0).value(), 100.0, 1e-6) << upm;
    EXPECT_NEAR(b.upm(), upm, 1e-9);
  }
}

TEST(Characterize, BlockForTimeWithOverlapStillHitsTheTarget) {
  const cpu::CpuModel m(cpu::CpuParams{}, cpu::athlon64_gears());
  const cpu::ComputeBlock b = block_for_time(m, 73.5, seconds(50.0), 0.78);
  EXPECT_NEAR(m.execute_time(b, 0).value(), 50.0, 1e-6);
}

TEST(Characterize, AmdahlShare) {
  EXPECT_DOUBLE_EQ(amdahl_share(0.0, 4), 0.25);
  EXPECT_DOUBLE_EQ(amdahl_share(0.2, 4), 0.4);
  EXPECT_DOUBLE_EQ(amdahl_share(0.2, 1), 1.0);
  EXPECT_THROW((void)amdahl_share(1.5, 4), ContractError);
  EXPECT_THROW((void)amdahl_share(0.1, 0), ContractError);
}

// --- registry ------------------------------------------------------------------------

TEST(Registry, NasSuiteIsTheTableOneOrder) {
  const auto& suite = nas_suite();
  ASSERT_EQ(suite.size(), 6u);
  const char* expected[] = {"EP", "BT", "LU", "MG", "SP", "CG"};
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(suite[i].name, expected[i]);
  // Descending UPM, as in Table 1.
  double prev = 1e18;
  for (const auto& e : suite) {
    const auto w = e.make();
    const auto* nas = dynamic_cast<const NasSkeleton*>(w.get());
    ASSERT_NE(nas, nullptr);
    EXPECT_LT(nas->params().upm, prev);
    prev = nas->params().upm;
  }
}

TEST(Registry, AllWorkloadsIncludesJacobiAndSynthetic) {
  EXPECT_EQ(all_workloads().size(), 12u);
  EXPECT_EQ(make_workload("Jacobi")->name(), "Jacobi");
  EXPECT_EQ(make_workload("SYNTH")->name(), "SYNTH");
  EXPECT_EQ(make_workload("SHIFT")->name(), "SHIFT");
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW((void)make_workload("DT"), ContractError);
  EXPECT_EQ(make_workload("FT")->name(), "FT");
  EXPECT_EQ(make_workload("IS.C")->name(), "IS.C");
}

TEST(Registry, PaperNodeCounts) {
  EXPECT_EQ(paper_node_counts(*make_workload("CG"), 9),
            (std::vector<int>{1, 2, 4, 8}));
  EXPECT_EQ(paper_node_counts(*make_workload("BT"), 9),
            (std::vector<int>{1, 4, 9}));
  EXPECT_EQ(paper_node_counts(*make_workload("SP"), 32),
            (std::vector<int>{1, 4, 9, 16, 25}));
  EXPECT_EQ(paper_node_counts(*make_workload("Jacobi"), 10),
            (std::vector<int>{1, 2, 4, 6, 8, 10}));
  EXPECT_EQ(paper_node_counts(*make_workload("EP"), 32),
            (std::vector<int>{1, 2, 4, 8, 16, 32}));
}

TEST(Registry, SquareGridSupport) {
  const auto bt = make_workload("BT");
  EXPECT_TRUE(bt->supports(1));
  EXPECT_TRUE(bt->supports(4));
  EXPECT_TRUE(bt->supports(25));
  EXPECT_FALSE(bt->supports(2));
  EXPECT_FALSE(bt->supports(8));
  EXPECT_TRUE(is_square(16));
  EXPECT_FALSE(is_square(15));
}

TEST(Registry, TableOneUpmValues) {
  const std::map<std::string, double> expected = {
      {"EP", 844.0}, {"BT", 79.6}, {"LU", 73.5},
      {"MG", 70.6},  {"SP", 49.5}, {"CG", 8.60}};
  for (const auto& e : nas_suite()) {
    const auto w = e.make();
    const auto* nas = dynamic_cast<const NasSkeleton*>(w.get());
    EXPECT_DOUBLE_EQ(nas->params().upm, expected.at(e.name)) << e.name;
  }
}

// --- structural properties of runs -------------------------------------------------

TEST(Workloads, SingleNodeRunsHaveNoMessages) {
  auto runner = athlon();
  for (const auto& e : all_workloads()) {
    const auto w = e.make();
    if (!w->supports(1)) continue;
    const cluster::RunResult r = runner.run(*w, 1, 0);
    EXPECT_EQ(r.messages, 0u) << e.name;
    EXPECT_GT(r.wall.value(), 0.0) << e.name;
  }
}

TEST(Workloads, EpIsAlmostAllCompute) {
  auto runner = athlon();
  const cluster::RunResult r = runner.run(*make_workload("EP"), 8, 0);
  EXPECT_LT(r.breakdown.idle_derived / r.wall, 0.01);
}

TEST(Workloads, CgIdleGrowsSuperlinearly) {
  auto runner = athlon();
  const auto cg = make_workload("CG");
  const Seconds i2 = runner.run(*cg, 2, 0).breakdown.idle_derived;
  const Seconds i4 = runner.run(*cg, 4, 0).breakdown.idle_derived;
  const Seconds i8 = runner.run(*cg, 8, 0).breakdown.idle_derived;
  // Quadratic-ish: each doubling more than doubles idle time.
  EXPECT_GT(i4 / i2, 2.0);
  EXPECT_GT(i8 / i4, 2.0);
}

TEST(Workloads, LuMessageCountGrowsWhileSizeShrinks) {
  // The paper's LU anomaly, measured from our own traces.
  auto runner = athlon();
  const auto lu = make_workload("LU");
  const cluster::RunResult r4 = runner.run(*lu, 4, 0);
  const cluster::RunResult r8 = runner.run(*lu, 8, 0);
  const double msgs4 = static_cast<double>(r4.messages) / 4;
  const double msgs8 = static_cast<double>(r8.messages) / 8;
  EXPECT_GT(msgs8, msgs4);  // More messages per node...
  const double avg4 = static_cast<double>(r4.net_bytes) / r4.messages;
  const double avg8 = static_cast<double>(r8.net_bytes) / r8.messages;
  EXPECT_LT(avg8, avg4);    // ...each smaller...
  const Seconds i4 = r4.breakdown.idle_derived;
  const Seconds i8 = r8.breakdown.idle_derived;
  // ...and idle time grows sub-proportionally (the wire volume is
  // constant; residual growth is ring-coupled waiting).  The paper's own
  // classification wavered between linear and constant here.
  EXPECT_LT(i8 / i4, 2.0);
  EXPECT_GT(i8 / i4, 0.8);
}

TEST(Workloads, JacobiSpeedupsMatchThePaper) {
  auto runner = athlon();
  const Jacobi jacobi;
  const Seconds t1 = runner.run(jacobi, 1, 0).wall;
  const double paper[] = {1.9, 3.6, 5.0, 6.4, 7.7};
  const int nodes[] = {2, 4, 6, 8, 10};
  for (int i = 0; i < 5; ++i) {
    const double speedup = t1 / runner.run(jacobi, nodes[i], 0).wall;
    EXPECT_NEAR(speedup, paper[i], 0.6) << nodes[i] << " nodes";
  }
}

TEST(Workloads, SyntheticGetsGoodSpeedupOnEight) {
  auto runner = athlon();
  const Synthetic synth;
  const double speedup =
      runner.run(synth, 1, 0).wall / runner.run(synth, 8, 0).wall;
  EXPECT_GT(speedup, 7.0);  // Paper: "over 7 on 8 nodes".
}

TEST(Workloads, SyntheticMissRateNearPaperValue) {
  const Synthetic synth;
  const double rate = synth.measured_l2_miss_rate();
  EXPECT_NEAR(rate, 0.07, 0.02);  // Paper: 7%.
}

TEST(Workloads, SyntheticMissRateTracksChaseFraction) {
  Synthetic::Params p;
  p.chase_fraction = 0.20;
  const Synthetic heavy(p);
  p.chase_fraction = 0.02;
  const Synthetic light(p);
  EXPECT_GT(heavy.measured_l2_miss_rate(), light.measured_l2_miss_rate() * 3);
}

TEST(Workloads, MgHasLargeReplicatedSerialFraction) {
  auto runner = athlon();
  const auto mg = make_workload("MG");
  const Seconds a1 = runner.run(*mg, 1, 0).breakdown.active_max;
  const Seconds a8 = runner.run(*mg, 8, 0).breakdown.active_max;
  // With Fs ~ 0.12, T^A(8)/T^A(1) ~ 0.23 (vs 0.125 for Fs = 0).
  EXPECT_GT(a8 / a1, 0.18);
  EXPECT_LT(a8 / a1, 0.28);
}

TEST(Workloads, ActiveTimeFollowsAmdahlWithinJitter) {
  auto runner = athlon();
  for (const char* name : {"EP", "CG", "LU"}) {
    const auto w = make_workload(name);
    const auto* nas = dynamic_cast<const NasSkeleton*>(w.get());
    const double fs = nas->params().serial_fraction;
    const Seconds a1 = runner.run(*w, 1, 0).breakdown.active_max;
    const Seconds a4 = runner.run(*w, 4, 0).breakdown.active_max;
    const double expected = (1.0 - fs) / 4.0 + fs;
    EXPECT_NEAR(a4 / a1, expected, 0.03 * expected + 0.02) << name;
  }
}

TEST(Workloads, GearDoesNotChangeMessageCounts) {
  auto runner = athlon();
  const auto cg = make_workload("CG");
  const cluster::RunResult fast = runner.run(*cg, 4, 0);
  const cluster::RunResult slow = runner.run(*cg, 4, 5);
  EXPECT_EQ(fast.messages, slow.messages);
  EXPECT_EQ(fast.net_bytes, slow.net_bytes);
  EXPECT_EQ(fast.mpi_calls, slow.mpi_calls);
}

}  // namespace
}  // namespace gearsim::workloads
