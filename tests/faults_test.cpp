// Tests for the fault-injection layer: plan construction/validation, the
// checkpoint/restart arithmetic (hand-computed scenarios), the injector's
// realization through the experiment runner, the scheduler's outage
// handling, and the determinism contract (same seeded plan -> bit-identical
// results; empty plan -> bit-identical to a run that never saw the fault
// layer).
#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/experiment.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "faults/restart_model.hpp"
#include "sched/scheduler.hpp"
#include "workloads/jacobi.hpp"

namespace gearsim::faults {
namespace {

// A Jacobi small enough that every fault test runs in milliseconds.
workloads::Jacobi small_jacobi() {
  workloads::Jacobi::Params p;
  p.seq_active = seconds(4.0);
  p.iterations = 40;
  return workloads::Jacobi(p);
}

cluster::ClusterConfig test_cluster() {
  cluster::ClusterConfig config = cluster::athlon_cluster();
  config.max_nodes = 4;
  return config;
}

/// Checkpoint policy used by the hand-computed scenarios: checkpoints at
/// work positions 4 and 8 of a 10 s run, 1 s writes, 2 s restarts.
CheckpointConfig toy_ckpt() {
  CheckpointConfig cfg;
  cfg.interval = seconds(4.0);
  cfg.write_time = seconds(1.0);
  cfg.write_power = watts(50.0);
  cfg.restart_time = seconds(2.0);
  cfg.restart_power = watts(25.0);
  cfg.max_restarts = 16;
  return cfg;
}

void expect_identical(const cluster::RunResult& a,
                      const cluster::RunResult& b) {
  EXPECT_EQ(a.wall.value(), b.wall.value());
  EXPECT_EQ(a.energy.value(), b.energy.value());
  EXPECT_EQ(a.active_energy.value(), b.active_energy.value());
  EXPECT_EQ(a.idle_energy.value(), b.idle_energy.value());
  EXPECT_EQ(a.mean_active_power.value(), b.mean_active_power.value());
  EXPECT_EQ(a.mean_idle_power.value(), b.mean_idle_power.value());
  EXPECT_EQ(a.mpi_calls, b.mpi_calls);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.net_bytes, b.net_bytes);
  EXPECT_EQ(a.gear_switches, b.gear_switches);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.rework_time.value(), b.rework_time.value());
  EXPECT_EQ(a.rework_energy.value(), b.rework_energy.value());
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.sampled_energy.has_value(), b.sampled_energy.has_value());
  if (a.sampled_energy && b.sampled_energy) {
    EXPECT_EQ(a.sampled_energy->value(), b.sampled_energy->value());
  }
  EXPECT_EQ(a.sampled_coverage, b.sampled_coverage);
  ASSERT_EQ(a.node_energy.size(), b.node_energy.size());
  for (std::size_t i = 0; i < a.node_energy.size(); ++i) {
    EXPECT_EQ(a.node_energy[i].total.value(), b.node_energy[i].total.value());
  }
  EXPECT_EQ(a.fault_events.size(), b.fault_events.size());
}

// --- FaultPlan ---------------------------------------------------------------

TEST(FaultPlan, CrashesKeptInTimeOrder) {
  FaultPlan plan;
  plan.crash(0, seconds(5.0)).crash(1, seconds(2.0)).crash(2, seconds(9.0));
  ASSERT_EQ(plan.crashes().size(), 3u);
  EXPECT_EQ(plan.crashes()[0].node, 1u);
  EXPECT_EQ(plan.crashes()[1].node, 0u);
  EXPECT_EQ(plan.crashes()[2].node, 2u);
}

TEST(FaultPlan, RejectsBadWindows) {
  FaultPlan plan;
  EXPECT_THROW(plan.crash(0, seconds(-1.0)), ContractError);
  EXPECT_THROW(plan.straggle(0, seconds(5.0), seconds(5.0), 1), ContractError);
  EXPECT_THROW(plan.drop_meter(0, seconds(2.0), seconds(1.0)), ContractError);
  CheckpointConfig cfg;
  cfg.write_time = seconds(-1.0);
  EXPECT_THROW(plan.with_checkpointing(cfg), ContractError);
}

TEST(FaultPlan, ValidateChecksClusterGeometry) {
  FaultPlan plan;
  plan.crash(7, seconds(1.0));
  EXPECT_THROW(plan.validate(4, 6), ContractError);
  FaultPlan gears;
  gears.straggle(0, seconds(0.0), seconds(1.0), 9);
  EXPECT_THROW(gears.validate(4, 6), ContractError);
}

TEST(FaultPlan, EmptyMeansNothingScheduled) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.with_checkpointing(CheckpointConfig{});
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, RandomCrashesAreSeedDeterministic) {
  FaultPlan a(123);
  FaultPlan b(123);
  FaultPlan c(124);
  a.random_crashes(0.05, 4, seconds(200.0));
  b.random_crashes(0.05, 4, seconds(200.0));
  c.random_crashes(0.05, 4, seconds(200.0));
  ASSERT_FALSE(a.crashes().empty());
  ASSERT_EQ(a.crashes().size(), b.crashes().size());
  for (std::size_t i = 0; i < a.crashes().size(); ++i) {
    EXPECT_EQ(a.crashes()[i].node, b.crashes()[i].node);
    EXPECT_EQ(a.crashes()[i].at.value(), b.crashes()[i].at.value());
  }
  EXPECT_NE(a.crashes().size(), 0u);
  // A different seed draws a different schedule.
  bool differs = a.crashes().size() != c.crashes().size();
  for (std::size_t i = 0; !differs && i < a.crashes().size(); ++i) {
    differs = a.crashes()[i].at.value() != c.crashes()[i].at.value();
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, ZeroRateSchedulesNothing) {
  FaultPlan plan;
  plan.random_crashes(0.0, 4, seconds(100.0));
  EXPECT_TRUE(plan.crashes().empty());
}

// --- EnergyProfile -----------------------------------------------------------

TEST(EnergyProfile, FlatProfileIntegratesLinearly) {
  const EnergyProfile p = EnergyProfile::flat(watts(100.0), seconds(10.0));
  EXPECT_DOUBLE_EQ(p.total().value(), 1000.0);
  EXPECT_DOUBLE_EQ(p.between(seconds(0.0), seconds(10.0)).value(), 1000.0);
  EXPECT_DOUBLE_EQ(p.between(seconds(2.0), seconds(4.5)).value(), 250.0);
  // Clamped outside the span; empty/reversed intervals are zero.
  EXPECT_DOUBLE_EQ(p.between(seconds(-5.0), seconds(20.0)).value(), 1000.0);
  EXPECT_DOUBLE_EQ(p.between(seconds(4.0), seconds(4.0)).value(), 0.0);
  EXPECT_DOUBLE_EQ(p.between(seconds(6.0), seconds(2.0)).value(), 0.0);
}

TEST(EnergyProfile, FromMeterMatchesExactIntegral) {
  power::EnergyMeter meter(2);
  meter.enable_profile_recording();
  meter.set_power(0, seconds(0.0), watts(100.0), power::NodeState::kActive);
  meter.set_power(1, seconds(0.0), watts(80.0), power::NodeState::kIdle);
  meter.set_power(0, seconds(3.0), watts(50.0), power::NodeState::kIdle);
  meter.set_power(1, seconds(5.0), watts(120.0), power::NodeState::kActive);
  meter.finish(seconds(10.0));
  const EnergyProfile p = EnergyProfile::from_meter(meter);
  EXPECT_DOUBLE_EQ(p.end().value(), 10.0);
  EXPECT_DOUBLE_EQ(p.total().value(), meter.total_energy().value());
  // Node 0: 100 W for 3 s then 50 W; node 1: 80 W for 5 s then 120 W.
  // Cluster over [2, 6]: (100+80) for 1 s + (50+80) for 2 s + (50+120) for 1.
  EXPECT_DOUBLE_EQ(p.between(seconds(2.0), seconds(6.0)).value(),
                   180.0 + 260.0 + 170.0);
}

// --- checkpoint/restart arithmetic ------------------------------------------

TEST(RestartModel, BaselineAddsCheckpointOverhead) {
  const EnergyProfile p = EnergyProfile::flat(watts(100.0), seconds(10.0));
  const RestartStats base =
      checkpointed_baseline(seconds(10.0), p, 2, toy_ckpt());
  // Checkpoints at work 4 and 8 (never at the end): +2 s, +2*1s*2n*50W.
  EXPECT_DOUBLE_EQ(base.wall.value(), 12.0);
  EXPECT_DOUBLE_EQ(base.checkpoint_time.value(), 2.0);
  EXPECT_DOUBLE_EQ(base.checkpoint_energy.value(), 200.0);
  EXPECT_DOUBLE_EQ(base.energy.value(), 1200.0);
  EXPECT_EQ(base.retries, 0);
  EXPECT_TRUE(base.completed);
}

TEST(RestartModel, ComposeHandComputedCrash) {
  // Solid run: 10 s at 100 W cluster (2 nodes).  Crash at wall t=7:
  // checkpoint 4 was written over wall [4, 5); work position at the crash
  // is 6, durable progress 4.  Restart takes 2 s -> resume at 9 from work
  // 4; remaining 6 s work + 1 write (at 8) -> finish at 16.
  const EnergyProfile p = EnergyProfile::flat(watts(100.0), seconds(10.0));
  trace::FaultLog log;
  const RestartStats stats =
      compose_restarts(seconds(10.0), p, 2, toy_ckpt(),
                       {CrashEvent{1, seconds(7.0)}}, &log);
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.retries, 1);
  EXPECT_DOUBLE_EQ(stats.wall.value(), 16.0);
  EXPECT_DOUBLE_EQ(stats.rework_time.value(), 4.0);
  // Attempt 1: compute [0,6) = 600 J + one write 100 J = 700 J; restart
  // 2s*2n*25W = 100 J; attempt 2: compute [4,10) = 600 J + write 100 J.
  EXPECT_DOUBLE_EQ(stats.energy.value(), 1500.0);
  EXPECT_DOUBLE_EQ(stats.rework_energy.value(), 300.0);
  EXPECT_DOUBLE_EQ(stats.checkpoint_time.value(), 2.0);
  // The log shows checkpoint -> crash -> restart -> checkpoint.
  const auto count = [&log](trace::FaultEventKind kind) {
    return std::count_if(log.begin(), log.end(),
                         [kind](const trace::FaultEvent& e) {
                           return e.kind == kind;
                         });
  };
  EXPECT_EQ(count(trace::FaultEventKind::kNodeCrash), 1);
  EXPECT_EQ(count(trace::FaultEventKind::kRestart), 1);
  EXPECT_EQ(count(trace::FaultEventKind::kCheckpoint), 2);
}

TEST(RestartModel, CrashDuringWriteDiscardsThePartialCheckpoint) {
  // Crash at wall 4.5, mid-write of checkpoint 4: nothing durable, so the
  // restart goes back to work 0 and rewrites everything.
  const EnergyProfile p = EnergyProfile::flat(watts(100.0), seconds(10.0));
  const RestartStats stats = compose_restarts(
      seconds(10.0), p, 2, toy_ckpt(), {CrashEvent{0, seconds(4.5)}});
  EXPECT_TRUE(stats.completed);
  // Restart at 6.5 from work 0: 10 s work + both writes -> finish 18.5.
  EXPECT_DOUBLE_EQ(stats.wall.value(), 18.5);
  // Attempt 1: compute 400 J + half a write (0.5s*2n*50W = 50 J); restart
  // 100 J; attempt 2: full baseline 1200 J.
  EXPECT_DOUBLE_EQ(stats.energy.value(), 1750.0);
}

TEST(RestartModel, CrashAfterCompletionNeverHappens) {
  const EnergyProfile p = EnergyProfile::flat(watts(100.0), seconds(10.0));
  const RestartStats stats = compose_restarts(
      seconds(10.0), p, 2, toy_ckpt(), {CrashEvent{0, seconds(100.0)}});
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.retries, 0);
  EXPECT_DOUBLE_EQ(stats.wall.value(), 12.0);
  EXPECT_DOUBLE_EQ(stats.rework_time.value(), 0.0);
}

TEST(RestartModel, ExhaustedRestartBudgetFails) {
  const EnergyProfile p = EnergyProfile::flat(watts(100.0), seconds(10.0));
  CheckpointConfig cfg = toy_ckpt();
  cfg.max_restarts = 0;
  const RestartStats stats = compose_restarts(
      seconds(10.0), p, 2, cfg, {CrashEvent{1, seconds(7.0)}});
  EXPECT_FALSE(stats.completed);
  EXPECT_EQ(stats.retries, 1);
  EXPECT_DOUBLE_EQ(stats.failed_at.value(), 7.0);
  EXPECT_EQ(stats.failed_node, 1u);
  EXPECT_DOUBLE_EQ(stats.wall.value(), 7.0);
}

TEST(RestartModel, CrashesInsideARestartWindowAreAbsorbed) {
  const EnergyProfile p = EnergyProfile::flat(watts(100.0), seconds(10.0));
  // Second crash at 8.0 lands inside the [7, 9) restart window.
  const RestartStats stats = compose_restarts(
      seconds(10.0), p, 2, toy_ckpt(),
      {CrashEvent{0, seconds(7.0)}, CrashEvent{1, seconds(8.0)}});
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.retries, 1);
  EXPECT_DOUBLE_EQ(stats.wall.value(), 16.0);
}

TEST(RestartModel, ExpectedZeroRateEqualsBaseline) {
  const EnergyProfile p = EnergyProfile::flat(watts(140.0), seconds(33.0));
  const RestartStats base =
      checkpointed_baseline(seconds(33.0), p, 4, toy_ckpt());
  const RestartStats zero =
      expected_restarts(seconds(33.0), p, 4, toy_ckpt(), 0.0);
  EXPECT_EQ(zero.wall.value(), base.wall.value());
  EXPECT_EQ(zero.energy.value(), base.energy.value());
  EXPECT_EQ(zero.retries, 0);
}

TEST(RestartModel, ExpectedCostsGrowWithTheRate) {
  const EnergyProfile p = EnergyProfile::flat(watts(140.0), seconds(33.0));
  double prev_wall = 0.0;
  double prev_energy = 0.0;
  for (const double rate : {0.0, 1e-4, 1e-3, 1e-2}) {
    const RestartStats s =
        expected_restarts(seconds(33.0), p, 4, toy_ckpt(), rate);
    EXPECT_GT(s.wall.value(), prev_wall);
    EXPECT_GT(s.energy.value(), prev_energy);
    prev_wall = s.wall.value();
    prev_energy = s.energy.value();
  }
}

// --- injector + runner -------------------------------------------------------

TEST(FaultRun, CrashWithoutCheckpointingAbortsTheRun) {
  cluster::ExperimentRunner runner(test_cluster());
  const auto jacobi = small_jacobi();
  const cluster::RunResult solid = runner.run(jacobi, 2, 0);

  FaultPlan plan;
  const Seconds crash_at = seconds(solid.wall.value() * 0.5);
  plan.crash(1, crash_at);
  cluster::RunOptions options;
  options.faults = &plan;
  const cluster::RunResult r = runner.run(jacobi, 2, options);
  EXPECT_EQ(r.outcome, cluster::RunOutcome::kFailed);
  EXPECT_DOUBLE_EQ(r.wall.value(), crash_at.value());
  ASSERT_TRUE(r.fatal_crash.has_value());
  EXPECT_EQ(r.fatal_crash->node, 1u);
  // Partial accounting: some energy was burned, less than the full run.
  EXPECT_GT(r.energy.value(), 0.0);
  EXPECT_LT(r.energy.value(), solid.energy.value());
  ASSERT_EQ(r.fault_events.size(), 1u);
  EXPECT_EQ(r.fault_events[0].kind, trace::FaultEventKind::kNodeCrash);
}

TEST(FaultRun, CrashScheduledPastCompletionIsHarmless) {
  cluster::ExperimentRunner runner(test_cluster());
  const auto jacobi = small_jacobi();
  const cluster::RunResult solid = runner.run(jacobi, 2, 0);

  FaultPlan plan;
  plan.crash(0, seconds(solid.wall.value() * 10.0));
  cluster::RunOptions options;
  options.faults = &plan;
  const cluster::RunResult r = runner.run(jacobi, 2, options);
  EXPECT_EQ(r.outcome, cluster::RunOutcome::kCompleted);
  EXPECT_EQ(r.wall.value(), solid.wall.value());
  EXPECT_EQ(r.energy.value(), solid.energy.value());
}

TEST(FaultRun, CheckpointingAbsorbsTheCrash) {
  cluster::ExperimentRunner runner(test_cluster());
  const auto jacobi = small_jacobi();
  const cluster::RunResult solid = runner.run(jacobi, 2, 0);

  FaultPlan plan;
  plan.crash(0, seconds(solid.wall.value() * 0.6));
  CheckpointConfig cfg;
  cfg.interval = seconds(solid.wall.value() / 5.0);
  cfg.write_time = seconds(0.05);
  cfg.restart_time = seconds(0.5);
  plan.with_checkpointing(cfg);
  cluster::RunOptions options;
  options.faults = &plan;
  const cluster::RunResult r = runner.run(jacobi, 2, options);
  EXPECT_EQ(r.outcome, cluster::RunOutcome::kCompletedAfterRestart);
  EXPECT_EQ(r.retries, 1);
  EXPECT_GT(r.wall.value(), solid.wall.value());
  EXPECT_GT(r.energy.value(), solid.energy.value());
  EXPECT_GT(r.rework_time.value(), 0.0);
  EXPECT_GT(r.rework_energy.value(), 0.0);
  EXPECT_GT(r.checkpoint_time.value(), 0.0);
  const bool has_restart = std::any_of(
      r.fault_events.begin(), r.fault_events.end(),
      [](const trace::FaultEvent& e) {
        return e.kind == trace::FaultEventKind::kRestart;
      });
  EXPECT_TRUE(has_restart);
}

TEST(FaultRun, StragglerWindowLengthensTheRun) {
  cluster::ExperimentRunner runner(test_cluster());
  const auto jacobi = small_jacobi();
  const cluster::RunResult solid = runner.run(jacobi, 2, 0);

  FaultPlan plan;
  plan.straggle(0, seconds(0.0), seconds(1e9),
                runner.num_gears() - 1);
  cluster::RunOptions options;
  options.faults = &plan;
  const cluster::RunResult r = runner.run(jacobi, 2, options);
  EXPECT_EQ(r.outcome, cluster::RunOutcome::kCompleted);
  EXPECT_GT(r.wall.value(), solid.wall.value());
  // Both window edges are on the timeline.
  EXPECT_EQ(r.fault_events.size(), 2u);
}

TEST(FaultRun, MeterDropoutReportsCoverageAndInterpolates) {
  cluster::ClusterConfig config = test_cluster();
  config.sample_power = true;
  cluster::ExperimentRunner runner(config);
  const auto jacobi = small_jacobi();
  const cluster::RunResult solid = runner.run(jacobi, 2, 0);
  ASSERT_TRUE(solid.sampled_energy.has_value());
  EXPECT_EQ(solid.sampled_coverage, 1.0);

  FaultPlan plan;
  plan.drop_meter(0, seconds(solid.wall.value() * 0.2),
                  seconds(solid.wall.value() * 0.5));
  cluster::RunOptions options;
  options.faults = &plan;
  const cluster::RunResult r = runner.run(jacobi, 2, options);
  ASSERT_TRUE(r.sampled_energy.has_value());
  EXPECT_LT(r.sampled_coverage, 1.0);
  EXPECT_GT(r.sampled_coverage, 0.5);
  // The trapezoid bridge keeps the sampled integral close to the exact
  // one (piecewise-constant power; the holes are interpolated linearly).
  EXPECT_NEAR(r.sampled_energy->value(), r.energy.value(),
              0.05 * r.energy.value());
  // The exact books are untouched by a measurement fault.
  EXPECT_EQ(r.energy.value(), solid.energy.value());
}

TEST(FaultRun, DegradedLinkForcesRetransmissions) {
  cluster::ExperimentRunner runner(test_cluster());
  const auto jacobi = small_jacobi();
  const cluster::RunResult solid = runner.run(jacobi, 2, 0);
  EXPECT_EQ(solid.retransmissions, 0u);

  FaultPlan plan(99);
  net::LinkFaultWindow window;
  window.loss_probability = 0.5;
  window.retransmit_timeout = milliseconds(5.0);
  plan.degrade_link(window);
  cluster::RunOptions options;
  options.faults = &plan;
  const cluster::RunResult r = runner.run(jacobi, 2, options);
  EXPECT_GT(r.retransmissions, 0u);
  EXPECT_GT(r.wall.value(), solid.wall.value());
  EXPECT_FALSE(r.fault_events.empty());
}

// --- determinism contract ----------------------------------------------------

TEST(FaultDeterminism, SameSeededPlanIsBitIdentical) {
  cluster::ExperimentRunner runner(test_cluster());
  const auto jacobi = small_jacobi();

  const auto make_plan = [] {
    FaultPlan plan(2024);
    plan.random_crashes(0.02, 2, seconds(400.0));
    net::LinkFaultWindow window;
    window.loss_probability = 0.3;
    plan.degrade_link(window);
    plan.straggle(1, seconds(1.0), seconds(3.0), 3);
    CheckpointConfig cfg;
    cfg.interval = seconds(5.0);
    cfg.write_time = seconds(0.1);
    cfg.restart_time = seconds(1.0);
    plan.with_checkpointing(cfg);
    return plan;
  };
  const FaultPlan plan_a = make_plan();
  const FaultPlan plan_b = make_plan();
  cluster::RunOptions options_a;
  options_a.faults = &plan_a;
  cluster::RunOptions options_b;
  options_b.faults = &plan_b;
  const cluster::RunResult a = runner.run(jacobi, 2, options_a);
  const cluster::RunResult b = runner.run(jacobi, 2, options_b);
  expect_identical(a, b);
}

TEST(FaultDeterminism, EmptyPlanIsBitIdenticalToNoPlan) {
  cluster::ClusterConfig config = test_cluster();
  config.sample_power = true;  // Exercise the meter path too.
  cluster::ExperimentRunner runner(config);
  const auto jacobi = small_jacobi();

  const cluster::RunResult bare = runner.run(jacobi, 2, 0);
  const FaultPlan empty_plan;
  cluster::RunOptions options;
  options.faults = &empty_plan;
  const cluster::RunResult with_empty = runner.run(jacobi, 2, options);
  expect_identical(bare, with_empty);
  EXPECT_TRUE(with_empty.fault_events.empty());
}

// --- repeated-run statistics -------------------------------------------------

TEST(RepeatedResult, TimeCvIsZeroNotNanOnDegenerateStats) {
  cluster::ExperimentRunner::RepeatedResult empty;
  EXPECT_EQ(empty.time_cv(), 0.0);  // Zero mean must not divide.
  cluster::ExperimentRunner::RepeatedResult single;
  single.time_s.add(12.5);
  EXPECT_EQ(single.time_cv(), 0.0);  // One sample: no spread.
}

// --- scheduler outages -------------------------------------------------------

sched::WorkloadProfile one_config_profile(const std::string& name,
                                          double time_s, double power_w) {
  std::vector<sched::ConfigPoint> points;
  points.push_back(sched::ConfigPoint{4, 0, 1, seconds(time_s),
                                      watts(power_w) * seconds(time_s)});
  return sched::WorkloadProfile(name, std::move(points));
}

TEST(SchedulerOutage, NoOutagesMatchesTheLegacyOverload) {
  using namespace gearsim::sched;
  const WorkloadProfile p = one_config_profile("J", 25.0, 800.0);
  const Scheduler sched(Machine{4, watts(10000.0), watts(10.0)});
  const std::vector<Job> queue = {Job{"a", &p}, Job{"b", &p}};
  const ScheduleResult plain = sched.schedule(queue);
  const ScheduleResult with_empty = sched.schedule(queue, {});
  EXPECT_EQ(plain.makespan.value(), with_empty.makespan.value());
  EXPECT_EQ(plain.job_energy.value(), with_empty.job_energy.value());
  EXPECT_EQ(plain.idle_energy.value(), with_empty.idle_energy.value());
  EXPECT_EQ(plain.peak_power.value(), with_empty.peak_power.value());
  EXPECT_EQ(plain.placements.size(), with_empty.placements.size());
  EXPECT_EQ(with_empty.preemptions, 0);
  EXPECT_EQ(with_empty.wasted_energy.value(), 0.0);
}

TEST(SchedulerOutage, KilledJobIsRequeuedAfterRepair) {
  using namespace gearsim::sched;
  const WorkloadProfile p = one_config_profile("J", 25.0, 800.0);
  const Scheduler sched(Machine{4, watts(10000.0), watts(10.0)});
  const std::vector<Job> queue = {Job{"a", &p}};
  // All four nodes die at t=10 and come back at t=15: the job loses its
  // first 10 s of work and reruns completely, ending at 15 + 25 = 40.
  const ScheduleResult r =
      sched.schedule(queue, {NodeOutage{seconds(10.0), 4, seconds(5.0)}});
  EXPECT_EQ(r.preemptions, 1);
  EXPECT_DOUBLE_EQ(r.makespan.value(), 40.0);
  EXPECT_DOUBLE_EQ(r.wasted_energy.value(), 800.0 * 10.0);
  ASSERT_EQ(r.placements.size(), 1u);  // The killed placement was removed.
  EXPECT_DOUBLE_EQ(r.placements[0].start.value(), 15.0);
  EXPECT_DOUBLE_EQ(r.job_energy.value(), 800.0 * 25.0);
}

TEST(SchedulerOutage, UnrepairedOutageThatBlocksTheQueueThrows) {
  using namespace gearsim::sched;
  const WorkloadProfile p = one_config_profile("J", 25.0, 800.0);
  const Scheduler sched(Machine{4, watts(10000.0), watts(10.0)});
  const std::vector<Job> queue = {Job{"a", &p}};
  // The whole machine dies forever mid-run: the job can never be re-run.
  EXPECT_THROW(
      (void)sched.schedule(queue, {NodeOutage{seconds(10.0), 4}}),
      ContractError);
}

TEST(SchedulerOutage, PartialOutageKillsOnlyWhatMustDie) {
  using namespace gearsim::sched;
  // Two 2-node jobs; losing 2 of 4 nodes kills only the younger one.
  std::vector<ConfigPoint> points;
  points.push_back(ConfigPoint{2, 0, 1, seconds(30.0),
                               watts(400.0) * seconds(30.0)});
  const WorkloadProfile p("half", std::move(points));
  const Scheduler sched(Machine{4, watts(10000.0), watts(10.0)},
                        WorkloadProfile::Objective::kMinTime,
                        QueueDiscipline::kGreedy);
  const std::vector<Job> queue = {Job{"old", &p}, Job{"young", &p}};
  const ScheduleResult r =
      sched.schedule(queue, {NodeOutage{seconds(10.0), 2, seconds(5.0)}});
  // Both start at 0; "young" (placed second) is killed at 10, resumes at
  // 15, ends at 45; "old" finishes undisturbed at 30.
  EXPECT_EQ(r.preemptions, 1);
  EXPECT_DOUBLE_EQ(r.makespan.value(), 45.0);
  EXPECT_DOUBLE_EQ(r.placement("old").start.value(), 0.0);
  EXPECT_DOUBLE_EQ(r.placement("young").start.value(), 15.0);
}

TEST(SchedulerOutage, TwoVictimOutageRequeuesInSubmissionOrder) {
  using namespace gearsim::sched;
  // Both 2-node jobs die when 3 of 4 nodes go down at t=10.  One node
  // stays down much longer, so after the first repair only one job fits
  // at a time and the requeue order is observable: "a" was submitted
  // first and must restart first.  (Regression: victims used to be
  // pushed to the queue front one by one, inverting the order.)
  std::vector<ConfigPoint> points;
  points.push_back(
      ConfigPoint{2, 0, 1, seconds(30.0), watts(400.0) * seconds(30.0)});
  const WorkloadProfile p("half", std::move(points));
  const Scheduler sched(Machine{4, watts(10000.0), watts(10.0)});
  const ScheduleResult r = sched.schedule(
      {Job{"a", &p}, Job{"b", &p}},
      {NodeOutage{seconds(10.0), 2, seconds(10.0)},
       NodeOutage{seconds(10.0), 1, seconds(100.0)}});
  EXPECT_EQ(r.preemptions, 2);
  EXPECT_DOUBLE_EQ(r.placement("a").start.value(), 20.0);
  EXPECT_DOUBLE_EQ(r.placement("b").start.value(), 50.0);
  EXPECT_DOUBLE_EQ(r.makespan.value(), 80.0);
}

TEST(SchedulerOutage, IdleWaitBeforeTheFirstPlacementIsInThePeak) {
  using namespace gearsim::sched;
  // 2 of 4 nodes are down from t=0, so the 4-node job waits for the
  // repair with the two survivors parked at 10 W each.  The job itself
  // draws only 5 W: the reported peak must come from the pre-start idle
  // window, not the run.
  std::vector<ConfigPoint> points;
  points.push_back(
      ConfigPoint{4, 0, 1, seconds(25.0), watts(5.0) * seconds(25.0)});
  const WorkloadProfile p("dim", std::move(points));
  const Scheduler sched(Machine{4, watts(10000.0), watts(10.0)});
  const ScheduleResult r =
      sched.schedule({Job{"a", &p}},
                     {NodeOutage{seconds(0.0), 2, seconds(7.0)}});
  EXPECT_DOUBLE_EQ(r.placement("a").start.value(), 7.0);
  EXPECT_DOUBLE_EQ(r.peak_power.value(), 20.0);   // 2 parked x 10 W.
  EXPECT_DOUBLE_EQ(r.idle_energy.value(), 140.0);  // 20 W x 7 s.
  EXPECT_DOUBLE_EQ(r.makespan.value(), 32.0);
}

TEST(SchedulerOutage, RepairUnderARunningJobAddsParkedDrawToThePeak) {
  using namespace gearsim::sched;
  // The single-tenant scheduler checks the cap only at placement time:
  // a repair that returns parked nodes mid-run raises the true draw and
  // peak_power must report it honestly — even past the cap.  (The
  // BatchScheduler closes this window by re-arbitrating gears at the
  // repair; see sched_test.cpp.)
  // Two shapes: the wide one satisfies the empty-machine pre-check; the
  // narrow one is what actually fits while 3 of 4 nodes are down.
  std::vector<ConfigPoint> points;
  points.push_back(
      ConfigPoint{4, 0, 1, seconds(25.0), watts(300.0) * seconds(25.0)});
  points.push_back(
      ConfigPoint{1, 0, 1, seconds(100.0), watts(200.0) * seconds(100.0)});
  const WorkloadProfile p("one", std::move(points));
  const Scheduler sched(Machine{4, watts(340.0), watts(50.0)});
  const ScheduleResult r =
      sched.schedule({Job{"a", &p}},
                     {NodeOutage{seconds(0.0), 3, seconds(10.0)}});
  // [0, 10): 200 W job alone; [10, 100): plus 3 x 50 W parked = 350 W.
  EXPECT_DOUBLE_EQ(r.peak_power.value(), 350.0);
  EXPECT_DOUBLE_EQ(r.idle_energy.value(), 3 * 50.0 * 90.0);
}

TEST(SchedulerOutage, BruteForceDrawTimelineMatchesPeakAndIdleEnergy) {
  using namespace gearsim::sched;
  // Reconstruct the draw timeline from first principles — placements
  // plus the outage calendar — and check the scheduler's sampled peak
  // and idle integral against it, so no window can go unsampled.
  std::vector<ConfigPoint> wide_pts;
  wide_pts.push_back(
      ConfigPoint{4, 0, 1, seconds(25.0), watts(800.0) * seconds(25.0)});
  const WorkloadProfile wide("wide", std::move(wide_pts));
  std::vector<ConfigPoint> narrow_pts;
  narrow_pts.push_back(
      ConfigPoint{1, 0, 1, seconds(40.0), watts(100.0) * seconds(40.0)});
  const WorkloadProfile narrow("narrow", std::move(narrow_pts));
  const double idle = 10.0;
  const Scheduler sched(Machine{4, watts(10000.0), watts(idle)},
                        WorkloadProfile::Objective::kMinTime,
                        QueueDiscipline::kGreedy);
  const double out_at = 30.0;
  const double back_at = 50.0;
  const ScheduleResult r = sched.schedule(
      {Job{"a", &wide}, Job{"b", &narrow}},
      {NodeOutage{seconds(out_at), 2, seconds(back_at - out_at)}});
  EXPECT_EQ(r.preemptions, 0);  // The outage only took parked nodes.

  std::vector<double> times = {0.0, out_at, back_at};
  for (const auto& pl : r.placements) {
    times.push_back(pl.start.value());
    times.push_back(pl.end.value());
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  double peak = 0.0;
  double idle_energy = 0.0;
  for (std::size_t i = 0; i + 1 < times.size(); ++i) {
    const double t = times[i];
    if (t >= r.makespan.value()) break;
    double busy_power = 0.0;
    int busy_nodes = 0;
    for (const auto& pl : r.placements) {
      if (pl.start.value() <= t && t < pl.end.value()) {
        busy_power += pl.config.mean_power().value();
        busy_nodes += pl.config.nodes;
      }
    }
    const int capacity = (t >= out_at && t < back_at) ? 2 : 4;
    const double draw = busy_power + (capacity - busy_nodes) * idle;
    peak = std::max(peak, draw);
    idle_energy += (capacity - busy_nodes) * idle * (times[i + 1] - t);
  }
  EXPECT_DOUBLE_EQ(r.peak_power.value(), peak);
  EXPECT_NEAR(r.idle_energy.value(), idle_energy, 1e-9);
}

}  // namespace
}  // namespace gearsim::faults
