// Tests for the cluster harness: presets, the experiment runner's
// accounting identities, determinism, and gear-sweep structure.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/dvfs.hpp"
#include "cluster/experiment.hpp"
#include "exec/result_io.hpp"
#include "faults/fault_plan.hpp"
#include "model/gear_data.hpp"
#include "net/topology.hpp"
#include "workloads/jacobi.hpp"
#include "workloads/registry.hpp"

namespace gearsim::cluster {
namespace {

TEST(Presets, AthlonMatchesThePaperMachine) {
  const ClusterConfig c = athlon_cluster();
  EXPECT_EQ(c.max_nodes, 10);
  EXPECT_EQ(c.gears.size(), 6u);
  EXPECT_DOUBLE_EQ(c.gears.fastest().frequency.value(), 2e9);
}

TEST(Presets, SunClusterIsFixedGear32Nodes) {
  const ClusterConfig c = sun_cluster();
  EXPECT_EQ(c.max_nodes, 32);
  EXPECT_EQ(c.gears.size(), 1u);
}

TEST(Presets, XeonClusterHasASharedNoisyNetwork) {
  EXPECT_GT(xeon_cluster().network.latency_jitter, 0.0);
}

TEST(Runner, RejectsInvalidRuns) {
  ExperimentRunner runner(athlon_cluster());
  const workloads::Jacobi jacobi;
  EXPECT_THROW((void)runner.run(jacobi, 0, 0), ContractError);
  EXPECT_THROW((void)runner.run(jacobi, 11, 0), ContractError);   // > max.
  EXPECT_THROW((void)runner.run(jacobi, 2, 6), ContractError);    // Bad gear.
  const auto bt = workloads::make_workload("BT");
  EXPECT_THROW((void)runner.run(*bt, 8, 0), ContractError);       // Not square.
}

TEST(Runner, EnergyIdentityHolds) {
  // total == active + idle; total == sum over nodes; mean powers weighted
  // by the respective times reproduce the energies.
  ExperimentRunner runner(athlon_cluster());
  const RunResult r = runner.run(workloads::Jacobi(), 4, 2);
  EXPECT_NEAR(r.energy.value(),
              (r.active_energy + r.idle_energy).value(),
              1e-6 * r.energy.value());
  Joules per_node{};
  Seconds active_time{};
  Seconds idle_time{};
  for (const auto& ne : r.node_energy) {
    per_node += ne.total;
    active_time += ne.active_time;
    idle_time += ne.idle_time;
  }
  EXPECT_NEAR(per_node.value(), r.energy.value(), 1e-6 * r.energy.value());
  EXPECT_NEAR((r.mean_active_power * active_time).value(),
              r.active_energy.value(), 1e-6 * r.active_energy.value());
  EXPECT_NEAR((r.mean_idle_power * idle_time).value(),
              r.idle_energy.value(), 1e-6 * r.idle_energy.value());
}

TEST(Runner, WallClockIdentities) {
  ExperimentRunner runner(athlon_cluster());
  const RunResult r = runner.run(workloads::Jacobi(), 4, 0);
  // Every node's active+idle time equals the wall clock.
  for (const auto& ne : r.node_energy) {
    EXPECT_NEAR(ne.total_time().value(), r.wall.value(),
                1e-9 + 1e-9 * r.wall.value());
  }
  // Breakdown wall equals run wall; active_max + idle_derived == wall.
  EXPECT_DOUBLE_EQ(r.breakdown.wall.value(), r.wall.value());
  EXPECT_NEAR((r.breakdown.active_max + r.breakdown.idle_derived).value(),
              r.wall.value(), 1e-9);
}

TEST(Runner, RunsAreDeterministic) {
  ExperimentRunner a(athlon_cluster());
  ExperimentRunner b(athlon_cluster());
  const RunResult ra = a.run(workloads::Jacobi(), 6, 3);
  const RunResult rb = b.run(workloads::Jacobi(), 6, 3);
  EXPECT_DOUBLE_EQ(ra.wall.value(), rb.wall.value());
  EXPECT_DOUBLE_EQ(ra.energy.value(), rb.energy.value());
  EXPECT_EQ(ra.messages, rb.messages);
}

TEST(Runner, SeedChangesJitterOnly) {
  ClusterConfig config = athlon_cluster();
  ExperimentRunner a(config);
  config.seed = 777;
  ExperimentRunner b(config);
  const RunResult ra = a.run(workloads::Jacobi(), 4, 0);
  const RunResult rb = b.run(workloads::Jacobi(), 4, 0);
  EXPECT_NE(ra.wall.value(), rb.wall.value());
  EXPECT_NEAR(ra.wall / rb.wall, 1.0, 0.05);  // Jitter is percent-level.
  EXPECT_EQ(ra.messages, rb.messages);
}

TEST(Runner, ZeroImbalanceMakesRanksSymmetric) {
  ClusterConfig config = athlon_cluster();
  config.load_imbalance = 0.0;
  ExperimentRunner runner(config);
  const RunResult r = runner.run(*workloads::make_workload("EP"), 4, 0);
  // Compute is symmetric; tiny spread remains from tree positions in the
  // final allreduce.
  EXPECT_NEAR(r.breakdown.active_mean / r.breakdown.active_max, 1.0, 1e-4);
}

TEST(Runner, GearSweepCoversAllGearsFastestFirst) {
  ExperimentRunner runner(athlon_cluster());
  const auto runs = runner.gear_sweep(workloads::Jacobi(), 2);
  ASSERT_EQ(runs.size(), 6u);
  for (std::size_t g = 0; g < runs.size(); ++g) {
    EXPECT_EQ(runs[g].gear_index, g);
    EXPECT_EQ(runs[g].gear_label, static_cast<int>(g) + 1);
  }
  // Paper invariant: the fastest gear takes the least time.
  for (std::size_t g = 1; g < runs.size(); ++g) {
    EXPECT_GE(runs[g].wall.value(), runs[0].wall.value());
  }
}

TEST(Runner, SlowerGearReducesMeanActivePower) {
  ExperimentRunner runner(athlon_cluster());
  const auto runs = runner.gear_sweep(workloads::Jacobi(), 1);
  for (std::size_t g = 1; g < runs.size(); ++g) {
    EXPECT_LT(runs[g].mean_active_power.value(),
              runs[g - 1].mean_active_power.value());
  }
}

TEST(Runner, SpeedupHelper) {
  ExperimentRunner runner(athlon_cluster());
  const RunResult r1 = runner.run(workloads::Jacobi(), 1, 0);
  const RunResult r4 = runner.run(workloads::Jacobi(), 4, 0);
  EXPECT_NEAR(speedup(r1, r4), r1.wall / r4.wall, 1e-12);
}

TEST(GearData, MeasurementProtocolProducesMonotoneSg) {
  ExperimentRunner runner(athlon_cluster());
  const model::GearData data =
      model::measure_gear_data(runner, *workloads::make_workload("CG"));
  ASSERT_EQ(data.size(), 6u);
  EXPECT_DOUBLE_EQ(data.at(0).slowdown, 1.0);
  for (std::size_t g = 1; g < 6; ++g) {
    EXPECT_GE(data.at(g).slowdown, data.at(g - 1).slowdown);
    EXPECT_LT(data.at(g).active_power.value(),
              data.at(g - 1).active_power.value());
    EXPECT_LT(data.at(g).idle_power.value(), data.at(g).active_power.value());
  }
  EXPECT_THROW((void)data.at(6), ContractError);
}

TEST(GearData, SgBoundedByCycleRatio) {
  ExperimentRunner runner(athlon_cluster());
  for (const char* name : {"EP", "CG", "LU"}) {
    const model::GearData data =
        model::measure_gear_data(runner, *workloads::make_workload(name));
    for (std::size_t g = 0; g < 6; ++g) {
      EXPECT_LE(data.at(g).slowdown,
                runner.config().gears.cycle_time_ratio(g) + 1e-9)
          << name << " gear " << g;
    }
  }
}

TEST(Runner, SunClusterRunsAllNasAt32) {
  ExperimentRunner runner(sun_cluster());
  const auto ep = workloads::make_workload("EP");
  const RunResult r = runner.run(*ep, 32, 0);
  EXPECT_GT(r.wall.value(), 0.0);
  EXPECT_EQ(r.node_energy.size(), 32u);
}

TEST(Runner, XeonClusterIsNoisyAcrossSeeds) {
  // The paper discarded this machine: a shared network makes timings
  // unreliable.  Verify the preset actually produces that behavior.
  ClusterConfig config = xeon_cluster();
  ExperimentRunner a(config);
  config.network.jitter_seed = 1234;
  ExperimentRunner b(config);
  const auto cg = workloads::make_workload("CG");
  const Seconds ta = a.run(*cg, 8, 0).wall;
  const Seconds tb = b.run(*cg, 8, 0).wall;
  EXPECT_NE(ta.value(), tb.value());
}

TEST(Runner, RepeatedRunsQuantifyJitter) {
  ExperimentRunner runner(athlon_cluster());
  const auto stats =
      runner.run_repeated(*workloads::make_workload("MG"), 4, 0, 5);
  EXPECT_EQ(stats.runs.size(), 5u);
  EXPECT_EQ(stats.time_s.count(), 5u);
  // Different seeds produce different (but close) times.
  EXPECT_GT(stats.time_s.stddev(), 0.0);
  EXPECT_LT(stats.time_cv(), 0.03);  // ~1% imbalance -> small spread.
  EXPECT_NEAR(stats.mean_time().value(), stats.runs[0].wall.value(),
              0.05 * stats.runs[0].wall.value());
}

TEST(Runner, RepeatedRunsWithZeroImbalanceAreIdenticalModuloNetwork) {
  ClusterConfig config = athlon_cluster();
  config.load_imbalance = 0.0;
  ExperimentRunner runner(config);
  const auto stats =
      runner.run_repeated(*workloads::make_workload("EP"), 2, 0, 3);
  // EP has (almost) no network sensitivity; the spread collapses.
  EXPECT_LT(stats.time_cv(), 1e-6);
}

TEST(Runner, RepeatedRunsRequirePositiveCount) {
  ExperimentRunner runner(athlon_cluster());
  EXPECT_THROW(
      (void)runner.run_repeated(*workloads::make_workload("EP"), 1, 0, 0),
      ContractError);
}

TEST(Runner, ParallelSweepsMatchSerialBitForBit) {
  // gear_sweep / run_repeated with a worker pool must reproduce the
  // serial results exactly — the executor only moves points, it never
  // changes their seeds.
  ExperimentRunner runner(athlon_cluster());
  const workloads::Jacobi jacobi;
  const auto serial = runner.gear_sweep(jacobi, 4, 1);
  const auto wide = runner.gear_sweep(jacobi, 4, 8);
  ASSERT_EQ(serial.size(), wide.size());
  for (std::size_t g = 0; g < serial.size(); ++g) {
    EXPECT_EQ(serial[g].wall.value(), wide[g].wall.value());
    EXPECT_EQ(serial[g].energy.value(), wide[g].energy.value());
    EXPECT_EQ(serial[g].mpi_calls, wide[g].mpi_calls);
  }
  const auto rep_serial = runner.run_repeated(jacobi, 2, 0, 4, 1);
  const auto rep_wide = runner.run_repeated(jacobi, 2, 0, 4, 8);
  EXPECT_EQ(rep_serial.time_s.mean(), rep_wide.time_s.mean());
  EXPECT_EQ(rep_serial.time_s.stddev(), rep_wide.time_s.stddev());
  EXPECT_EQ(rep_serial.energy_j.mean(), rep_wide.energy_j.mean());
}

TEST(Runner, UniformRunReportsDegenerateGearRange) {
  ExperimentRunner runner(athlon_cluster());
  const RunResult r = runner.run(workloads::Jacobi(), 2, 3);
  EXPECT_FALSE(r.policy_run);
  EXPECT_EQ(r.gear_index, 3u);
  EXPECT_EQ(r.gear_min_index, 3u);
  EXPECT_EQ(r.gear_max_index, 3u);
}

TEST(Runner, PolicyRunReportsModalAndRangeNotRankZero) {
  // Bugfix regression: gear_index used to echo policy->compute_gear(0),
  // mislabeling mixed-gear runs with whatever rank 0 happened to use.
  // With ranks at gears {5, 1, 1, 1} the honest summary is modal gear 1,
  // range [1, 5] — and rank 0's gear 5 must NOT be reported as "the"
  // gear.
  ExperimentRunner runner(athlon_cluster());
  PerRankGear policy({5, 1, 1, 1});
  RunOptions options;
  options.policy = &policy;
  const RunResult r = runner.run(workloads::Jacobi(), 4, options);
  EXPECT_TRUE(r.policy_run);
  EXPECT_EQ(r.gear_index, 1u);      // Modal, not rank 0's 5.
  EXPECT_EQ(r.gear_min_index, 1u);  // Fastest rank.
  EXPECT_EQ(r.gear_max_index, 5u);  // Slowest rank.
  EXPECT_EQ(r.gear_label, 2);       // Label of the modal gear.
}

TEST(Runner, PolicyModalTieBreaksTowardFasterGear) {
  ExperimentRunner runner(athlon_cluster());
  PerRankGear policy({4, 4, 2, 2});
  RunOptions options;
  options.policy = &policy;
  const RunResult r = runner.run(workloads::Jacobi(), 4, options);
  EXPECT_EQ(r.gear_index, 2u);  // 2 and 4 tie; the faster (lower) wins.
  EXPECT_EQ(r.gear_min_index, 2u);
  EXPECT_EQ(r.gear_max_index, 4u);
}

// --- conservative parallel engine: serial-oracle equivalence -----------------

/// Every physical field of a parallel run must equal the serial oracle's
/// exactly (the parallel path is an optimization, not a model change).
/// event_order_hash is serial-only by contract; event_set_hash is the
/// cross-mode probe.
void expect_matches_serial(const RunResult& serial, const RunResult& parallel,
                           const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(serial.wall.value(), parallel.wall.value());
  EXPECT_EQ(serial.energy.value(), parallel.energy.value());
  EXPECT_EQ(serial.active_energy.value(), parallel.active_energy.value());
  EXPECT_EQ(serial.idle_energy.value(), parallel.idle_energy.value());
  EXPECT_EQ(serial.mpi_calls, parallel.mpi_calls);
  EXPECT_EQ(serial.messages, parallel.messages);
  EXPECT_EQ(serial.net_bytes, parallel.net_bytes);
  EXPECT_EQ(serial.event_set_hash, parallel.event_set_hash);
  EXPECT_NE(serial.event_order_hash, 0u);
  EXPECT_EQ(parallel.event_order_hash, 0u);
  EXPECT_EQ(serial.engine_partitions, 0u);
  // A fallback-to-serial run would pass the equalities vacuously; require
  // that the partitioned path actually executed.
  EXPECT_GE(parallel.engine_partitions, 2u);
  EXPECT_GE(parallel.engine_windows, 1u);
  ASSERT_EQ(serial.node_energy.size(), parallel.node_energy.size());
  for (std::size_t i = 0; i < serial.node_energy.size(); ++i) {
    EXPECT_EQ(serial.node_energy[i].total.value(),
              parallel.node_energy[i].total.value());
  }
}

TEST(Runner, ParallelEngineMatrixMatchesSerialOracle) {
  // Workloads x fault plans x engine threads {1, 2, 8}: the full
  // determinism matrix from the engine's acceptance contract.  Fault
  // plans cover the parallel-eligible space: fault-free, deterministic
  // straggler windows, a compose-mode crash + checkpointing plan, and a
  // lossy-link plan — loss draws are keyed by transfer identity, so the
  // barrier replay realizes the same losses as serial dispatch.
  // (Abort-mode crashes still fall back to serial; see
  // ParallelEngineFallsBackToSerialWhenUnsound below.)
  const ExperimentRunner runner(athlon_cluster());

  faults::FaultPlan stragglers;
  stragglers.straggle(0, seconds(0.0), seconds(1e9), 4)
      .straggle(2, seconds(1.0), seconds(3.0), 5);

  faults::FaultPlan compose;
  faults::CheckpointConfig ckpt;
  ckpt.interval = seconds(2.0);
  compose.with_checkpointing(ckpt).crash(1, seconds(3.0));

  faults::FaultPlan links(11);
  net::LinkFaultWindow lossy;
  lossy.from = seconds(0.0);
  lossy.until = seconds(5.0);
  lossy.loss_probability = 0.3;
  links.degrade_link(lossy);

  const std::vector<std::pair<std::string, const faults::FaultPlan*>> plans =
      {{"faults=none", nullptr},
       {"faults=stragglers", &stragglers},
       {"faults=compose", &compose},
       {"faults=links", &links}};

  for (const char* const name : {"Jacobi", "CG", "EP", "LU", "BT"}) {
    const auto workload = workloads::make_workload(name);
    for (const auto& [plan_label, plan] : plans) {
      RunOptions options;
      options.gear_index = 2;
      options.faults = plan;
      options.engine_threads = 1;
      const RunResult serial = runner.run(*workload, 4, options);
      for (const int threads : {2, 8}) {
        options.engine_threads = threads;
        const RunResult parallel = runner.run(*workload, 4, options);
        expect_matches_serial(serial, parallel,
                              std::string(name) + " " + plan_label +
                                  " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(Runner, ParallelEngineMatchesSerialUnderRoutedTopologies) {
  // Topology leg of the determinism matrix: fair-share contention is a
  // pure function of the transfer call sequence, so the barrier replay
  // must drive the link schedules to the exact serial realization.
  const std::vector<std::string> specs = {"fat-tree:2,2:1,1:1,1",
                                          "torus:4x4",
                                          "fat-tree:2,2:1,1:1,1:trunk_bw=2e6"};
  for (const std::string& spec : specs) {
    ClusterConfig config = athlon_cluster();
    install_topology(&config, net::parse_topology(spec));
    const ExperimentRunner runner(config);
    for (const char* const name : {"Jacobi", "CG"}) {
      const auto workload = workloads::make_workload(name);
      RunOptions options;
      options.gear_index = 2;
      options.engine_threads = 1;
      const RunResult serial = runner.run(*workload, 4, options);
      for (const int threads : {2, 8}) {
        options.engine_threads = threads;
        const RunResult parallel = runner.run(*workload, 4, options);
        expect_matches_serial(serial, parallel,
                              spec + " " + name + " threads=" +
                                  std::to_string(threads));
      }
    }
  }
}

TEST(Runner, ParallelEngineMatchesSerialAt256Ranks) {
  // The acceptance-scale case: >= 4 worker threads over >= 256 simulated
  // ranks reproduce the serial oracle exactly.  A trimmed Jacobi keeps
  // 257 runs of physics inside the test budget.
  ClusterConfig config = athlon_cluster();
  config.max_nodes = 256;
  const ExperimentRunner runner(config);
  workloads::Jacobi::Params params;
  params.iterations = 4;
  const workloads::Jacobi jacobi(params);

  RunOptions options;
  options.engine_threads = 1;
  const RunResult serial = runner.run(jacobi, 256, options);
  options.engine_threads = 4;
  const RunResult parallel = runner.run(jacobi, 256, options);
  expect_matches_serial(serial, parallel, "Jacobi 256 ranks, 4 threads");
  EXPECT_EQ(parallel.engine_partitions, 4u);
}

TEST(Runner, ParallelEngineFallsBackToSerialWhenUnsound) {
  // Configurations the parallel engine cannot reproduce exactly must run
  // serial (engine_partitions == 0, order hash reported) even when
  // engine_threads asks for partitioning.
  const workloads::Jacobi jacobi;

  // Lossy-link plans no longer force a fallback: loss draws are keyed
  // by (src, per-source ordinal), so the partitioned path both engages
  // and reproduces the serial realization (with actual retransmissions).
  {
    const ExperimentRunner runner(athlon_cluster());
    faults::FaultPlan links(17);
    net::LinkFaultWindow w;
    w.from = seconds(0.0);
    w.until = seconds(1.0);
    w.loss_probability = 0.5;
    links.degrade_link(w);
    RunOptions options;
    options.engine_threads = 1;
    options.faults = &links;
    const RunResult serial = runner.run(jacobi, 4, options);
    options.engine_threads = 8;
    const RunResult parallel = runner.run(jacobi, 4, options);
    EXPECT_GT(serial.retransmissions, 0u);
    EXPECT_EQ(serial.retransmissions, parallel.retransmissions);
    expect_matches_serial(serial, parallel, "lossy links, 8 threads");
  }
  // Jittered networks: no sound lookahead.
  {
    const ExperimentRunner runner(xeon_cluster());
    RunOptions options;
    options.engine_threads = 8;
    const RunResult r = runner.run(jacobi, 4, options);
    EXPECT_EQ(r.engine_partitions, 0u);
  }
  // Single node: nothing to partition.
  {
    const ExperimentRunner runner(athlon_cluster());
    RunOptions options;
    options.engine_threads = 8;
    const RunResult r = runner.run(jacobi, 1, options);
    EXPECT_EQ(r.engine_partitions, 0u);
  }
  // Cross-partition rendezvous sends are only discoverable mid-run: the
  // parallel attempt aborts with ParallelUnsupportedError and the runner
  // reruns serially, so the result still matches a serial-pinned run
  // field for field.
  {
    ClusterConfig config = athlon_cluster();
    config.mpi.eager_threshold = 0;  // Every message goes rendezvous.
    const ExperimentRunner runner(config);
    RunOptions options;
    options.engine_threads = 1;
    const RunResult serial = runner.run(jacobi, 4, options);
    options.engine_threads = 8;
    const RunResult fallback = runner.run(jacobi, 4, options);
    EXPECT_EQ(fallback.engine_partitions, 0u);
    EXPECT_EQ(exec::to_json(serial), exec::to_json(fallback));
  }
}

TEST(Runner, SpeedupRejectsDegenerateDenominator) {
  ExperimentRunner runner(athlon_cluster());
  const RunResult good = runner.run(workloads::Jacobi(), 1, 0);
  RunResult empty;  // Default-constructed: wall == 0.
  EXPECT_THROW((void)speedup(good, empty), ContractError);
  EXPECT_NO_THROW((void)speedup(empty, good));  // 0/positive is just 0.
}

}  // namespace
}  // namespace gearsim::cluster
