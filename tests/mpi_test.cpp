// Tests for the simulated MPI runtime: point-to-point semantics (matching,
// wildcards, ordering, eager vs synchronous), nonblocking operations,
// collectives built on the p2p layer, observers, and failure modes.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "mpi/comm.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace gearsim::mpi {
namespace {

/// Spins up an n-rank world and runs `body` on every rank.
class MpiHarness {
 public:
  explicit MpiHarness(int n, MpiParams params = {},
                      net::NetworkParams net_params = net::ethernet_100mbps())
      : network_(net_params, static_cast<std::size_t>(n)),
        world_(engine_, network_, n, params) {}

  World& world() { return world_; }
  sim::Engine& engine() { return engine_; }

  void run(const std::function<void(Comm&, sim::Process&)>& body) {
    for (int r = 0; r < world_.size(); ++r) {
      sim::Process& proc =
          engine_.spawn("rank" + std::to_string(r), [this, r, &body](sim::Process& p) {
            Comm comm(world_, r);
            body(comm, p);
          });
      world_.bind_rank(r, proc);
    }
    engine_.run();
  }

 private:
  sim::Engine engine_;
  net::Network network_;
  World world_;
};

TEST(MpiP2P, BlockingSendRecvDeliversStatus) {
  MpiHarness h(2);
  Status seen{};
  h.run([&](Comm& comm, sim::Process&) {
    if (comm.rank() == 0) {
      comm.send(1, 7, 1234);
    } else {
      seen = comm.recv(0, 7);
    }
  });
  EXPECT_EQ(seen.source, 0);
  EXPECT_EQ(seen.tag, 7);
  EXPECT_EQ(seen.bytes, Bytes{1234});
}

TEST(MpiP2P, RecvBlocksUntilMessageArrives) {
  MpiHarness h(2);
  double recv_done = 0.0;
  h.run([&](Comm& comm, sim::Process& p) {
    if (comm.rank() == 0) {
      p.delay(seconds(1.0));       // Send late.
      comm.send(1, 0, 100'000);
    } else {
      comm.recv(0, 0);
      recv_done = p.now().value();
    }
  });
  // Receiver waited for the 1 s delay plus transfer time.
  EXPECT_GT(recv_done, 1.0);
}

TEST(MpiP2P, EarlyMessageWaitsInUnexpectedQueue) {
  MpiHarness h(2);
  Status seen{};
  h.run([&](Comm& comm, sim::Process& p) {
    if (comm.rank() == 0) {
      comm.send(1, 3, 64);
    } else {
      p.delay(seconds(2.0));  // Let the message arrive unexpected.
      seen = comm.recv(0, 3);
    }
  });
  EXPECT_EQ(seen.tag, 3);
}

TEST(MpiP2P, TagFilteringSelectsAcrossArrivalOrder) {
  MpiHarness h(2);
  std::vector<int> order;
  h.run([&](Comm& comm, sim::Process& p) {
    if (comm.rank() == 0) {
      comm.send(1, 1, 64);
      comm.send(1, 2, 64);
    } else {
      p.delay(seconds(1.0));
      order.push_back(comm.recv(0, 2).tag);  // Match the later-sent first.
      order.push_back(comm.recv(0, 1).tag);
    }
  });
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(MpiP2P, WildcardSourceAndTag) {
  MpiHarness h(3);
  std::vector<Rank> sources;
  h.run([&](Comm& comm, sim::Process&) {
    if (comm.rank() == 2) {
      for (int i = 0; i < 2; ++i) {
        sources.push_back(comm.recv(kAnySource, kAnyTag).source);
      }
    } else {
      comm.send(2, 10 + comm.rank(), 64);
    }
  });
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_NE(sources[0], sources[1]);
}

TEST(MpiP2P, PairwiseOrderingIsFifo) {
  MpiHarness h(2);
  std::vector<Bytes> sizes;
  h.run([&](Comm& comm, sim::Process&) {
    if (comm.rank() == 0) {
      for (Bytes b = 1; b <= 5; ++b) comm.send(1, 0, b * 100);
    } else {
      for (int i = 0; i < 5; ++i) sizes.push_back(comm.recv(0, 0).bytes);
    }
  });
  EXPECT_EQ(sizes, (std::vector<Bytes>{100, 200, 300, 400, 500}));
}

TEST(MpiP2P, EagerSendDoesNotBlockOnMissingReceiver) {
  MpiHarness h(2);
  double send_done = -1.0;
  h.run([&](Comm& comm, sim::Process& p) {
    if (comm.rank() == 0) {
      comm.send(1, 0, 1024);  // Below the eager threshold.
      send_done = p.now().value();
    } else {
      p.delay(seconds(5.0));
      comm.recv(0, 0);
    }
  });
  // Sender finished long before the receiver posted (software cost only).
  EXPECT_LT(send_done, 0.1);
}

TEST(MpiP2P, SynchronousSendWaitsForTheMatch) {
  MpiParams params;
  params.eager_threshold = 1000;  // Force rendezvous for big messages.
  MpiHarness h(2, params);
  double send_done = -1.0;
  h.run([&](Comm& comm, sim::Process& p) {
    if (comm.rank() == 0) {
      comm.send(1, 0, 100'000);
      send_done = p.now().value();
    } else {
      p.delay(seconds(3.0));
      comm.recv(0, 0);
    }
  });
  EXPECT_GE(send_done, 3.0);  // Blocked until the receiver matched.
}

TEST(MpiP2P, SelfSendCompletesWithoutNetwork) {
  MpiHarness h(1);
  Status seen{};
  h.run([&](Comm& comm, sim::Process&) {
    comm.send(0, 5, 4096);
    seen = comm.recv(0, 5);
  });
  EXPECT_EQ(seen.source, 0);
  EXPECT_EQ(seen.bytes, Bytes{4096});
}

TEST(MpiP2P, RejectsInvalidArguments) {
  MpiHarness h(2);
  h.run([&](Comm& comm, sim::Process&) {
    if (comm.rank() == 0) {
      EXPECT_THROW(comm.send(5, 0, 1), ContractError);   // Bad rank.
      EXPECT_THROW(comm.send(1, -3, 1), ContractError);  // Internal tag.
      comm.send(1, 0, 1);                                // Unblock peer.
    } else {
      comm.recv(0, 0);
    }
  });
}

// --- nonblocking -----------------------------------------------------------------

TEST(MpiNonblocking, IrecvWaitRoundtrip) {
  MpiHarness h(2);
  Status seen{};
  h.run([&](Comm& comm, sim::Process&) {
    if (comm.rank() == 0) {
      comm.send(1, 9, 512);
    } else {
      Request r = comm.irecv(0, 9);
      seen = comm.wait(r);
    }
  });
  EXPECT_EQ(seen.tag, 9);
}

TEST(MpiNonblocking, IrecvOverlapsComputation) {
  MpiHarness h(2);
  bool done_before_wait = false;
  h.run([&](Comm& comm, sim::Process& p) {
    if (comm.rank() == 0) {
      comm.send(1, 0, 64);
    } else {
      Request r = comm.irecv(0, 0);
      p.delay(seconds(2.0));          // "Compute" while the message lands.
      done_before_wait = r.done();
      comm.wait(r);
    }
  });
  EXPECT_TRUE(done_before_wait);
}

TEST(MpiNonblocking, EagerIsendIsImmediatelyDone) {
  MpiHarness h(2);
  h.run([&](Comm& comm, sim::Process&) {
    if (comm.rank() == 0) {
      Request r = comm.isend(1, 0, 64);
      EXPECT_TRUE(r.done());
      comm.wait(r);  // No-op.
    } else {
      comm.recv(0, 0);
    }
  });
}

TEST(MpiNonblocking, WaitallDrainsMixedRequests) {
  MpiHarness h(3);
  int received = 0;
  h.run([&](Comm& comm, sim::Process&) {
    if (comm.rank() == 0) {
      std::vector<Request> reqs;
      reqs.push_back(comm.irecv(1, 0));
      reqs.push_back(comm.irecv(2, 0));
      reqs.push_back(comm.isend(1, 1, 64));
      comm.waitall(reqs);
      for (const auto& r : reqs) {
        if (r.done()) ++received;
      }
    } else {
      comm.send(0, 0, 64);
      if (comm.rank() == 1) comm.recv(0, 1);
    }
  });
  EXPECT_EQ(received, 3);
}

TEST(MpiNonblocking, WaitOnEmptyRequestThrows) {
  MpiHarness h(1);
  h.run([&](Comm& comm, sim::Process&) {
    Request empty;
    EXPECT_FALSE(empty.valid());
    EXPECT_THROW(comm.wait(empty), ContractError);
  });
}

TEST(MpiP2P, SendrecvExchangesWithoutDeadlock) {
  MpiHarness h(2);
  std::vector<Bytes> got(2);
  h.run([&](Comm& comm, sim::Process&) {
    const Rank peer = 1 - comm.rank();
    const Status s =
        comm.sendrecv(peer, 0, 1000 * (comm.rank() + 1), peer, 0);
    got[comm.rank()] = s.bytes;
  });
  EXPECT_EQ(got[0], Bytes{2000});
  EXPECT_EQ(got[1], Bytes{1000});
}

// --- collectives ------------------------------------------------------------------

class CollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizes, BarrierSynchronizes) {
  const int n = GetParam();
  MpiHarness h(n);
  std::vector<double> leave(n);
  const double stagger = 0.5;
  h.run([&](Comm& comm, sim::Process& p) {
    p.delay(seconds(stagger * comm.rank()));
    comm.barrier();
    leave[comm.rank()] = p.now().value();
  });
  // Nobody leaves before the last rank entered.
  const double last_entry = stagger * (n - 1);
  for (int r = 0; r < n; ++r) EXPECT_GE(leave[r], last_entry) << r;
}

TEST_P(CollectiveSizes, BcastReachesEveryRank) {
  const int n = GetParam();
  MpiHarness h(n);
  std::vector<double> done(n, -1.0);
  h.run([&](Comm& comm, sim::Process& p) {
    comm.bcast(0, kilobytes(100));
    done[comm.rank()] = p.now().value();
  });
  for (int r = 0; r < n; ++r) EXPECT_GE(done[r], 0.0) << r;
  if (n > 1) {
    // Non-roots finish no earlier than one transfer after start.
    for (int r = 1; r < n; ++r) EXPECT_GT(done[r], 0.008) << r;
  }
}

TEST_P(CollectiveSizes, AllreduceCompletesEverywhere) {
  const int n = GetParam();
  MpiHarness h(n);
  int finished = 0;
  h.run([&](Comm& comm, sim::Process&) {
    comm.allreduce(64);
    ++finished;
  });
  EXPECT_EQ(finished, n);
}

TEST_P(CollectiveSizes, AlltoallMovesAllPairs) {
  const int n = GetParam();
  MpiHarness h(n);
  h.run([&](Comm& comm, sim::Process&) { comm.alltoall(1000); });
  if (n > 1) {
    // n(n-1) user messages plus nothing else on the wire.
    EXPECT_EQ(h.world().network().messages_carried(),
              static_cast<std::uint64_t>(n) * (n - 1));
  }
}

TEST_P(CollectiveSizes, AllgatherRingCarriesNMinus1Steps) {
  const int n = GetParam();
  MpiHarness h(n);
  int finished = 0;
  h.run([&](Comm& comm, sim::Process&) {
    comm.allgather(512);
    ++finished;
  });
  EXPECT_EQ(finished, n);
  if (n > 1) {
    EXPECT_EQ(h.world().network().messages_carried(),
              static_cast<std::uint64_t>(n) * (n - 1));
  }
}

TEST_P(CollectiveSizes, GatherAndScatterComplete) {
  const int n = GetParam();
  MpiHarness h(n);
  int finished = 0;
  h.run([&](Comm& comm, sim::Process&) {
    comm.gather(0, 1000);
    comm.scatter(0, 1000);
    ++finished;
  });
  EXPECT_EQ(finished, n);
}

TEST_P(CollectiveSizes, ReduceToNonzeroRoot) {
  const int n = GetParam();
  MpiHarness h(n);
  int finished = 0;
  h.run([&](Comm& comm, sim::Process&) {
    comm.reduce(n - 1, 2048);
    comm.bcast(n - 1, 2048);
    ++finished;
  });
  EXPECT_EQ(finished, n);
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

TEST(MpiCollectives, BackToBackBarriersDoNotCrossTalk) {
  MpiHarness h(4);
  std::vector<int> counts(4, 0);
  h.run([&](Comm& comm, sim::Process& p) {
    for (int i = 0; i < 10; ++i) {
      // Uneven pacing tries to let a fast rank lap a slow one.
      p.delay(seconds(0.01 * ((comm.rank() + i) % 3)));
      comm.barrier();
      ++counts[comm.rank()];
    }
  });
  for (int r = 0; r < 4; ++r) EXPECT_EQ(counts[r], 10);
}

TEST(MpiCollectives, BcastScalesLogarithmically) {
  // Binomial tree: doubling ranks adds ~one transfer stage, not n stages.
  auto bcast_time = [](int n) {
    MpiHarness h(n);
    double t = 0.0;
    h.run([&](Comm& comm, sim::Process& p) {
      comm.bcast(0, megabytes(1));
      if (comm.rank() == n - 1) t = p.now().value();
    });
    return t;
  };
  const double t2 = bcast_time(2);
  const double t8 = bcast_time(8);
  const double t16 = bcast_time(16);
  // A linear (root-sends-to-everyone) algorithm would serialize n-1 full
  // transfers; the tree must beat that comfortably.  (Stage costs carry a
  // constant factor from fabric-reservation contention, so the bound is
  // stages-vs-links, not an exact log.)
  EXPECT_LT(t8, 0.66 * 7.0 * t2);
  EXPECT_LT(t16, 0.66 * 15.0 * t2);
  EXPECT_LT(t16, 2.5 * t8);  // Doubling ranks adds ~one (fat) stage.
}

// --- observers and failure modes ----------------------------------------------------

class CountingObserver final : public CallObserver {
 public:
  void on_enter(Rank, CallType, Seconds, Bytes, Rank) override { ++enters; }
  void on_exit(Rank, CallType, Seconds) override { ++exits; }
  int enters = 0;
  int exits = 0;
};

TEST(MpiObserver, SeesTopLevelCallsOnly) {
  MpiHarness h(4);
  CountingObserver obs;
  h.world().add_observer(&obs);
  h.run([&](Comm& comm, sim::Process&) { comm.allreduce(64); });
  // One traced call per rank — the collective's internal tree sends are
  // invisible, like PMPI.
  EXPECT_EQ(obs.enters, 4);
  EXPECT_EQ(obs.exits, 4);
  EXPECT_EQ(h.world().traced_calls(), 4u);
}

TEST(MpiFailure, RecvWithoutSenderDeadlocks) {
  MpiHarness h(2);
  EXPECT_THROW(h.run([&](Comm& comm, sim::Process&) {
                 if (comm.rank() == 0) comm.recv(1, 0);
               }),
               SimulationError);
}

TEST(MpiFailure, MutualRecvDeadlocks) {
  MpiHarness h(2);
  EXPECT_THROW(h.run([&](Comm& comm, sim::Process&) {
                 comm.recv(1 - comm.rank(), 0);
               }),
               SimulationError);
}

TEST(MpiFailure, RendezvousHeadToHeadSendsDeadlock) {
  // The classic unsafe pattern: both ranks send large messages first.
  MpiParams params;
  params.eager_threshold = 10;
  MpiHarness h(2, params);
  EXPECT_THROW(h.run([&](Comm& comm, sim::Process&) {
                 comm.send(1 - comm.rank(), 0, 1'000'000);
                 comm.recv(1 - comm.rank(), 0);
               }),
               SimulationError);
}

TEST(MpiFailure, EagerHeadToHeadSendsAreSafe) {
  MpiHarness h(2);
  int finished = 0;
  h.run([&](Comm& comm, sim::Process&) {
    comm.send(1 - comm.rank(), 0, 1000);
    comm.recv(1 - comm.rank(), 0);
    ++finished;
  });
  EXPECT_EQ(finished, 2);
}

TEST(MpiWorld, RejectsDoubleBindAndBadRanks) {
  sim::Engine engine;
  net::Network network(net::ethernet_100mbps(), 2);
  World world(engine, network, 2);
  sim::Process& p = engine.spawn("p", [](sim::Process&) {});
  world.bind_rank(0, p);
  EXPECT_THROW(world.bind_rank(0, p), ContractError);
  EXPECT_THROW(world.bind_rank(7, p), ContractError);
  engine.run();
}

TEST(MpiWorld, RejectsWorldLargerThanNetwork) {
  sim::Engine engine;
  net::Network network(net::ethernet_100mbps(), 2);
  EXPECT_THROW(World(engine, network, 4), ContractError);
}


// --- reduce_scatter and scan ----------------------------------------------------------

TEST_P(CollectiveSizes, ReduceScatterCompletes) {
  const int n = GetParam();
  MpiHarness h(n);
  int finished = 0;
  h.run([&](Comm& comm, sim::Process&) {
    comm.reduce_scatter(4096);
    ++finished;
  });
  EXPECT_EQ(finished, n);
}

TEST_P(CollectiveSizes, ScanIsAPrefixChain) {
  const int n = GetParam();
  MpiHarness h(n);
  std::vector<double> done(n);
  h.run([&](Comm& comm, sim::Process& p) {
    comm.scan(kilobytes(16));
    done[comm.rank()] = p.now().value();
  });
  // Inclusive prefix: completion times are non-decreasing along the chain.
  for (int r = 1; r < n; ++r) EXPECT_GE(done[r], done[r - 1] - 1e-12) << r;
}

TEST(MpiCollectives, ReduceScatterPowerOfTwoUsesHalving) {
  // Recursive halving on 8 ranks: 3 rounds of 1 exchange each per rank
  // (vs 7 rounds pairwise): strictly fewer messages.
  MpiHarness pow2(8);
  pow2.run([&](Comm& comm, sim::Process&) { comm.reduce_scatter(1024); });
  const auto pow2_msgs = pow2.world().network().messages_carried();
  MpiHarness odd(7);
  odd.run([&](Comm& comm, sim::Process&) { comm.reduce_scatter(1024); });
  const auto odd_msgs = odd.world().network().messages_carried();
  EXPECT_EQ(pow2_msgs, 8u * 3u);
  EXPECT_EQ(odd_msgs, 7u * 6u);
}

// --- communicator splitting ---------------------------------------------------------

TEST(MpiSplit, RowAndColumnCommunicators) {
  MpiHarness h(4);  // 2x2 grid.
  std::vector<int> row_sizes(4), row_ranks(4), col_ranks(4);
  h.run([&](Comm& comm, sim::Process&) {
    Comm row = comm.split_row(2);
    Comm col = comm.split_col(2);
    row_sizes[comm.rank()] = row.size();
    row_ranks[comm.rank()] = row.rank();
    col_ranks[comm.rank()] = col.rank();
    EXPECT_FALSE(row.is_world());
    EXPECT_TRUE(comm.is_world());
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(row_sizes[r], 2);
    EXPECT_EQ(row_ranks[r], r % 2);   // Position within the row.
    EXPECT_EQ(col_ranks[r], r / 2);   // Position within the column.
  }
}

TEST(MpiSplit, SubCommunicatorPointToPoint) {
  MpiHarness h(4);
  std::vector<Bytes> got(4, 0);
  h.run([&](Comm& comm, sim::Process&) {
    // Colors {0,0,1,1}: two pairs.
    Comm sub = comm.split(comm.rank() / 2, comm.rank());
    ASSERT_EQ(sub.size(), 2);
    if (sub.rank() == 0) {
      sub.send(1, 5, 1000 + comm.rank());
    } else {
      got[comm.rank()] = sub.recv(0, 5).bytes;
    }
  });
  EXPECT_EQ(got[1], Bytes{1000});  // From world rank 0 (local 0 of color 0).
  EXPECT_EQ(got[3], Bytes{1002});  // From world rank 2 (local 0 of color 1).
}

TEST(MpiSplit, ContextsIsolateTraffic) {
  // A world-communicator wildcard receive must NOT match traffic sent on
  // a sub-communicator, even with identical (src, tag).
  MpiHarness h(2);
  std::vector<Bytes> got(2, 0);
  h.run([&](Comm& comm, sim::Process&) {
    Comm sub = comm.split(0, comm.rank());
    if (comm.rank() == 0) {
      sub.send(1, 7, 111);    // Sub-communicator traffic.
      comm.send(1, 7, 222);   // World traffic, same source and tag.
    } else {
      got[0] = comm.recv(kAnySource, kAnyTag).bytes;  // World first.
      got[1] = sub.recv(0, 7).bytes;
    }
  });
  EXPECT_EQ(got[0], Bytes{222});
  EXPECT_EQ(got[1], Bytes{111});
}

TEST(MpiSplit, CollectivesOnSubCommunicators) {
  MpiHarness h(8);
  int finished = 0;
  h.run([&](Comm& comm, sim::Process&) {
    Comm half = comm.split(comm.rank() % 2, comm.rank());
    half.allreduce(64);
    half.barrier();
    half.bcast(0, 1024);
    ++finished;
  });
  EXPECT_EQ(finished, 8);
}

TEST(MpiSplit, KeyControlsOrdering) {
  MpiHarness h(3);
  std::vector<int> local(3);
  h.run([&](Comm& comm, sim::Process&) {
    // Reverse the ordering via descending keys.
    Comm sub = comm.split(0, -comm.rank());
    local[comm.rank()] = sub.rank();
  });
  EXPECT_EQ(local[0], 2);
  EXPECT_EQ(local[1], 1);
  EXPECT_EQ(local[2], 0);
}

TEST(MpiSplit, NestedSplits) {
  MpiHarness h(8);
  std::vector<int> leaf_sizes(8);
  h.run([&](Comm& comm, sim::Process&) {
    Comm half = comm.split(comm.rank() / 4, comm.rank());
    Comm quarter = half.split(half.rank() / 2, half.rank());
    leaf_sizes[comm.rank()] = quarter.size();
    quarter.barrier();  // Must synchronize exactly the pair.
  });
  for (int r = 0; r < 8; ++r) EXPECT_EQ(leaf_sizes[r], 2);
}

TEST(MpiSplit, SplitIsTracedAsACall) {
  MpiHarness h(2);
  CountingObserver obs;
  h.world().add_observer(&obs);
  h.run([&](Comm& comm, sim::Process&) {
    (void)comm.split(0, comm.rank());
  });
  EXPECT_EQ(obs.enters, 2);  // One Comm_split per rank; the internal
                             // barrier is untraced.
}

}  // namespace
}  // namespace gearsim::mpi
