// Tests for the adaptive DVFS runtime (src/policy): wait prediction,
// iteration clocking, the online controllers, the evaluation harness,
// and the cross-layer contracts the subsystem leans on — policy identity
// in cache keys, gear-residency accounting, and straggler-cap precedence
// over policy gear requests.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "cluster/dvfs.hpp"
#include "cluster/experiment.hpp"
#include "exec/cache_key.hpp"
#include "exec/result_io.hpp"
#include "exec/sweep_runner.hpp"
#include "faults/fault_plan.hpp"
#include "policy/controller.hpp"
#include "policy/evaluator.hpp"
#include "policy/slack_reclaimer.hpp"
#include "policy/timeout_downshift.hpp"
#include "trace/iteration.hpp"
#include "workloads/registry.hpp"

namespace gearsim::policy {
namespace {

using mpi::CallType;

// --- WaitPredictor -------------------------------------------------------------

TEST(WaitPredictor, UnseenSignaturePredictsNegative) {
  WaitPredictor p(0.5);
  p.reset(2);
  EXPECT_LT(p.predict(0, CallType::kAllreduce, 8), 0.0);
  p.observe(0, CallType::kAllreduce, 8, seconds(0.25));
  EXPECT_DOUBLE_EQ(p.predict(0, CallType::kAllreduce, 8), 0.25);
  // Other ranks and other signatures stay unknown.
  EXPECT_LT(p.predict(1, CallType::kAllreduce, 8), 0.0);
  EXPECT_LT(p.predict(0, CallType::kAllreduce, 16), 0.0);
  EXPECT_LT(p.predict(0, CallType::kBarrier, 8), 0.0);
}

TEST(WaitPredictor, EwmaTracksObservations) {
  WaitPredictor p(0.5);
  p.reset(1);
  p.observe(0, CallType::kBarrier, 0, seconds(1.0));
  p.observe(0, CallType::kBarrier, 0, seconds(0.0));
  EXPECT_DOUBLE_EQ(p.predict(0, CallType::kBarrier, 0), 0.5);
  p.observe(0, CallType::kBarrier, 0, seconds(0.5));
  EXPECT_DOUBLE_EQ(p.predict(0, CallType::kBarrier, 0), 0.5);
}

TEST(WaitPredictor, ResetDropsHistory) {
  WaitPredictor p(1.0);
  p.reset(1);
  p.observe(0, CallType::kBarrier, 0, seconds(1.0));
  p.reset(1);
  EXPECT_LT(p.predict(0, CallType::kBarrier, 0), 0.0);
}

// --- IterationClock ------------------------------------------------------------

TEST(IterationClock, AnchorsOnFirstCollectiveAndClosesOnRecurrence) {
  trace::IterationClock clock;
  // Point-to-point traffic before the first collective is ignored.
  EXPECT_FALSE(clock.on_call(CallType::kRecv, 1024));
  EXPECT_FALSE(clock.anchored());
  // First collective anchors (starts iteration 0, closes nothing).
  EXPECT_FALSE(clock.on_call(CallType::kAllreduce, 8));
  EXPECT_TRUE(clock.anchored());
  // Different collectives and p2p inside the iteration do not close it.
  EXPECT_FALSE(clock.on_call(CallType::kBarrier, 0));
  EXPECT_FALSE(clock.on_call(CallType::kAllreduce, 16));  // Other bytes.
  EXPECT_FALSE(clock.on_call(CallType::kSendrecv, 4096));
  // The anchor signature recurring closes the iteration.
  EXPECT_TRUE(clock.on_call(CallType::kAllreduce, 8));
  EXPECT_EQ(clock.iterations(), 1u);
  EXPECT_TRUE(clock.on_call(CallType::kAllreduce, 8));
  EXPECT_EQ(clock.iterations(), 2u);
  clock.reset();
  EXPECT_FALSE(clock.anchored());
  EXPECT_EQ(clock.iterations(), 0u);
}

TEST(IterationClock, OfflineBoundariesFindAnchorRecurrences) {
  // Three iterations of {allreduce(8); sendrecv; barrier}, prefixed by a
  // recv the detector must skip over.
  std::vector<trace::TraceRecord> records;
  auto add = [&records](CallType type, double enter, Bytes bytes) {
    trace::TraceRecord r;
    r.type = type;
    r.enter = seconds(enter);
    r.exit = seconds(enter + 0.01);
    r.bytes = bytes;
    records.push_back(r);
  };
  add(CallType::kRecv, 0.0, 1024);
  for (int i = 0; i < 3; ++i) {
    add(CallType::kAllreduce, 1.0 + i, 8);
    add(CallType::kSendrecv, 1.3 + i, 4096);
    add(CallType::kBarrier, 1.6 + i, 0);
  }
  const std::vector<Seconds> bounds = trace::iteration_boundaries(records);
  ASSERT_EQ(bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(bounds[0].value(), 2.0);
  EXPECT_DOUBLE_EQ(bounds[1].value(), 3.0);
}

// --- TimeoutDownshift ----------------------------------------------------------

TimeoutDownshift::Params timeout_params() {
  TimeoutDownshift::Params p;
  p.compute_gear = 0;
  p.park_gear = 5;
  p.timeout = microseconds(500.0);
  p.alpha = 1.0;  // Last observation wins: simplest to reason about.
  return p;
}

TEST(TimeoutDownshift, FirstSightingNeverParks) {
  TimeoutDownshift ctl(timeout_params(), 2);
  ctl.on_blocking_enter(0, CallType::kAllreduce, 8, seconds(0.0));
  EXPECT_EQ(ctl.comm_gear(0), 0u);
}

TEST(TimeoutDownshift, ParksOnceTheSignatureProvesSlow) {
  TimeoutDownshift ctl(timeout_params(), 1);
  ctl.on_blocking_enter(0, CallType::kAllreduce, 8, seconds(0.0));
  ctl.on_blocking_exit(0, CallType::kAllreduce, 8, seconds(0.01),
                       seconds(0.01));  // 10 ms >> 500 us.
  ctl.on_blocking_enter(0, CallType::kAllreduce, 8, seconds(1.0));
  EXPECT_EQ(ctl.comm_gear(0), 5u);
  // Compute gear is untouched: the park is comm-only.
  EXPECT_EQ(ctl.compute_gear(0), 0u);
}

TEST(TimeoutDownshift, ShortWaitsNeverPark) {
  TimeoutDownshift ctl(timeout_params(), 1);
  for (int i = 0; i < 5; ++i) {
    const auto t = seconds(0.1 * i);
    ctl.on_blocking_enter(0, CallType::kBarrier, 0, t);
    EXPECT_EQ(ctl.comm_gear(0), 0u) << i;
    ctl.on_blocking_exit(0, CallType::kBarrier, 0, t, microseconds(50.0));
  }
}

// --- SlackReclaimer ------------------------------------------------------------

SlackReclaimer::Params reclaimer_params() {
  SlackReclaimer::Params p;
  p.gear_slowdowns = {1.0, 1.05, 1.12, 1.21, 1.33, 1.75};
  p.hysteresis = 2;
  p.park_while_blocked = false;  // Keep the unit tests about the slack math.
  return p;
}

/// Feed one synthetic iteration through the controller's public hooks:
/// the anchor allreduce at `start`, whose wait is `blocked` seconds, with
/// the next anchor arriving `span` seconds after this one.
void feed_iteration(SlackReclaimer& ctl, int rank, double start, double span,
                    double blocked) {
  ctl.on_blocking_enter(rank, CallType::kAllreduce, 8, seconds(start));
  ctl.on_blocking_exit(rank, CallType::kAllreduce, 8,
                       seconds(start + blocked), seconds(blocked));
  (void)span;  // The *next* enter at start+span closes this iteration.
}

TEST(SlackReclaimer, WarmupHoldsGearZeroThenReclaimsSlack) {
  SlackReclaimer ctl(reclaimer_params(), 2);
  // Rank 0: 1 s iterations, 0.4 s blocked — plenty of slack.
  double t = 0.0;
  for (int iter = 0; iter < 5; ++iter, t += 1.0) {
    feed_iteration(ctl, 0, t, 1.0, 0.4);
    if (iter < 3) {
      // Warmup (2 iterations) + hysteresis (2 votes): still at gear 0.
      // (The first enter only anchors; iteration k closes at enter k+1.)
      EXPECT_EQ(ctl.compute_gear(0), 0u) << iter;
    }
  }
  // active0 = 0.6, slack budget = 0.9 * 0.4 = 0.36: gear 5 (1.75) wants
  // 0.45 extra — too much; gear 4 (1.33) wants 0.198 — fits.
  EXPECT_EQ(ctl.compute_gear(0), 4u);
}

TEST(SlackReclaimer, PinsTheSlacklessRank) {
  SlackReclaimer ctl(reclaimer_params(), 1);
  double t = 0.0;
  for (int iter = 0; iter < 8; ++iter, t += 1.0) {
    feed_iteration(ctl, 0, t, 1.0, 0.005);  // 0.5% blocked: critical path.
  }
  EXPECT_EQ(ctl.compute_gear(0), 0u);
}

TEST(SlackReclaimer, OverBudgetIterationBacksOffAndCapsDepth) {
  SlackReclaimer ctl(reclaimer_params(), 1);
  double t = 0.0;
  for (int iter = 0; iter < 5; ++iter, t += 1.0) {
    feed_iteration(ctl, 0, t, 1.0, 0.4);
  }
  ASSERT_EQ(ctl.compute_gear(0), 4u);
  // The reclaimed "slack" turns out to be another rank's wait: the next
  // anchor arrives 20% late, closing an iteration over the frozen
  // reference.  Back off immediately.
  t += 0.2;  // Enter at t+0.2 closes a 1.2 s iteration.
  feed_iteration(ctl, 0, t, 1.0, 0.1);
  t += 1.0;
  EXPECT_EQ(ctl.compute_gear(0), 3u);
  // And the surrendered gear is never re-taken, even though the frozen
  // slack measurement alone would still vote for gear 4.
  for (int iter = 0; iter < 6; ++iter, t += 1.0) {
    feed_iteration(ctl, 0, t, 1.0, 0.4);
    EXPECT_LE(ctl.compute_gear(0), 3u) << iter;
  }
}

TEST(SlackReclaimer, ValidatesParams) {
  SlackReclaimer::Params p = reclaimer_params();
  p.gear_slowdowns = {1.0, 0.9};  // Decreasing ladder.
  EXPECT_THROW(SlackReclaimer(p, 1), ContractError);
  p = reclaimer_params();
  p.gear_slowdowns.clear();
  EXPECT_THROW(SlackReclaimer(p, 1), ContractError);
  p = reclaimer_params();
  p.hysteresis = 0;
  EXPECT_THROW(SlackReclaimer(p, 1), ContractError);
}

// --- cache identity (policy signatures in sweep keys) --------------------------

TEST(PolicyCacheKey, TwoPoliciesAtSameNominalGearKeyDifferently) {
  const cluster::ClusterConfig config = cluster::athlon_cluster();
  const cluster::CommDownshiftFactory comm(0, 5);
  TimeoutDownshift::Params tp;
  tp.park_gear = 5;
  const TimeoutDownshiftFactory timeout(tp);
  // Both policies compute at gear 0 and the points share gear_index 0 —
  // only the policy signature separates them.
  const exec::CacheKey none =
      exec::sweep_point_key(config, "w", 4, 0, 0, nullptr);
  const exec::CacheKey a =
      exec::sweep_point_key(config, "w", 4, 0, 0, nullptr, comm.signature());
  const exec::CacheKey b = exec::sweep_point_key(config, "w", 4, 0, 0,
                                                 nullptr, timeout.signature());
  EXPECT_NE(none.text, a.text);
  EXPECT_NE(none.text, b.text);
  EXPECT_NE(a.text, b.text);
  EXPECT_NE(none.text.find("|policy=none|"), std::string::npos);
  EXPECT_NE(a.text.find("|policy=" + comm.signature() + "|"),
            std::string::npos);
}

TEST(PolicyCacheKey, FactorySignaturesEncodeParameters) {
  SlackReclaimer::Params a = reclaimer_params();
  SlackReclaimer::Params b = reclaimer_params();
  b.perf_budget = 0.10;
  EXPECT_NE(SlackReclaimerFactory(a).signature(),
            SlackReclaimerFactory(b).signature());
  TimeoutDownshift::Params tp;
  const TimeoutDownshiftFactory f(tp);
  EXPECT_EQ(f.signature(), f.instantiate(4)->signature());
}

// --- straggler cap precedence --------------------------------------------------

/// Whole-run straggler caps on every node: no node may run faster than
/// `min_gear` for the first `horizon` seconds.
faults::FaultPlan cap_all_nodes(int nodes, std::size_t min_gear) {
  faults::FaultPlan plan;
  for (int n = 0; n < nodes; ++n) {
    plan.straggle(static_cast<std::size_t>(n), Seconds{}, seconds(1e9),
                  min_gear);
  }
  return plan;
}

TEST(StragglerPrecedence, CapOverridesFasterPolicyRequest) {
  // effective gear = max(policy request, straggler cap): the slower one
  // wins.  A policy asking for gear 0 under a gear-3 cap computes like a
  // uniform gear-3 run.
  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  const auto ep = workloads::make_workload("EP");
  cluster::UniformGear fast(0);
  const faults::FaultPlan cap = cap_all_nodes(4, 3);
  cluster::RunOptions options;
  options.policy = &fast;
  options.faults = &cap;
  const cluster::RunResult capped = runner.run(*ep, 4, options);
  const cluster::RunResult gear3 = runner.run(*ep, 4, 3);
  EXPECT_NEAR(capped.wall.value(), gear3.wall.value(),
              1e-9 * gear3.wall.value());
  // The throttle is silent: residency reports the *requested* gear.
  ASSERT_EQ(capped.gear_residency.size(), 4u);
  EXPECT_GT(capped.gear_residency[0][0].value(), 0.0);
  EXPECT_DOUBLE_EQ(capped.gear_residency[0][3].value(), 0.0);
}

TEST(StragglerPrecedence, SlowerPolicyRequestWinsOverCap) {
  // The cap is a floor on slowness, not a setpoint: a policy already
  // slower than the cap keeps its own gear.
  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  const auto ep = workloads::make_workload("EP");
  cluster::UniformGear slow(5);
  const faults::FaultPlan cap = cap_all_nodes(4, 3);
  cluster::RunOptions options;
  options.policy = &slow;
  options.faults = &cap;
  const cluster::RunResult capped = runner.run(*ep, 4, options);
  const cluster::RunResult gear5 = runner.run(*ep, 4, 5);
  EXPECT_NEAR(capped.wall.value(), gear5.wall.value(),
              1e-9 * gear5.wall.value());
}

// --- gear residency ------------------------------------------------------------

TEST(GearResidency, UniformRunSpendsAllTimeInItsGear) {
  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  const auto cg = workloads::make_workload("CG");
  const cluster::RunResult r = runner.run(*cg, 4, 2);
  ASSERT_EQ(r.gear_residency.size(), 4u);
  for (const auto& rank : r.gear_residency) {
    ASSERT_EQ(rank.size(), 6u);
    for (std::size_t g = 0; g < rank.size(); ++g) {
      if (g == 2) {
        EXPECT_GT(rank[g].value(), 0.0);
        EXPECT_LE(rank[g].value(), r.wall.value() * (1.0 + 1e-12));
      } else {
        EXPECT_DOUBLE_EQ(rank[g].value(), 0.0);
      }
    }
  }
}

TEST(GearResidency, PolicyRunSplitsTimeAcrossGearsAndSumsToRankWall) {
  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  const auto cg = workloads::make_workload("CG");
  cluster::CommDownshift policy(0, 5);
  cluster::RunOptions options;
  options.policy = &policy;
  const cluster::RunResult r = runner.run(*cg, 4, options);
  ASSERT_EQ(r.gear_residency.size(), 4u);
  for (const auto& rank : r.gear_residency) {
    EXPECT_GT(rank[0].value(), 0.0);  // Compute gear.
    EXPECT_GT(rank[5].value(), 0.0);  // Parked gear.
    double sum = 0.0;
    for (const Seconds& s : rank) sum += s.value();
    // Residency covers [0, rank finish], which is at most the run wall.
    EXPECT_LE(sum, r.wall.value() * (1.0 + 1e-12));
    EXPECT_GT(sum, 0.9 * r.wall.value());
  }
}

TEST(GearResidency, RoundTripsThroughResultIo) {
  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  const auto cg = workloads::make_workload("CG");
  cluster::CommDownshift policy(0, 5);
  cluster::RunOptions options;
  options.policy = &policy;
  const cluster::RunResult r = runner.run(*cg, 4, options);
  const cluster::RunResult back = exec::result_from_json(exec::to_json(r));
  ASSERT_EQ(back.gear_residency.size(), r.gear_residency.size());
  for (std::size_t n = 0; n < r.gear_residency.size(); ++n) {
    ASSERT_EQ(back.gear_residency[n].size(), r.gear_residency[n].size());
    for (std::size_t g = 0; g < r.gear_residency[n].size(); ++g) {
      EXPECT_DOUBLE_EQ(back.gear_residency[n][g].value(),
                       r.gear_residency[n][g].value())
          << n << "/" << g;
    }
  }
  // And the round-trip is a fixpoint (bit-identical re-serialization).
  EXPECT_EQ(exec::to_json(back), exec::to_json(r));
}

// --- zero-duration calls -------------------------------------------------------

/// Iterative kernel whose barriers complete instantly on one rank: the
/// worst case for a policy that pays two gear transitions per call.
class TinyCallLoop final : public cluster::Workload {
 public:
  [[nodiscard]] std::string name() const override { return "tiny-calls"; }
  [[nodiscard]] std::string signature() const override {
    return "tiny-calls{}";
  }
  void run(cluster::RankContext& ctx) const override {
    for (int i = 0; i < 50; ++i) {
      ctx.compute_upm(100.0, 1e5);
      ctx.comm().barrier();
    }
  }
};

TEST(ZeroDurationCalls, NaiveCommDownshiftIsNeverCheaperThanNoPolicy) {
  // On one rank every barrier is zero-duration, so CommDownshift's park
  // buys nothing and pays two transitions (time at the parked gear's
  // idle power) per call.  It must not come out cheaper than leaving the
  // gear alone — the churn TimeoutDownshift exists to avoid.
  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  const TinyCallLoop loop;
  cluster::CommDownshift naive(0, 5);
  cluster::RunOptions options;
  options.policy = &naive;
  const cluster::RunResult shifted = runner.run(loop, 1, options);
  const cluster::RunResult base = runner.run(loop, 1, 0);
  EXPECT_EQ(shifted.gear_switches, 100u);
  EXPECT_GT(shifted.wall.value(), base.wall.value());
  EXPECT_GE(shifted.energy.value(), base.energy.value());

  // TimeoutDownshift on the same loop never parks (the measured waits
  // are zero) and so matches the no-policy run's switch count.
  TimeoutDownshift timeout(timeout_params(), 1);
  options.policy = &timeout;
  const cluster::RunResult gated = runner.run(loop, 1, options);
  EXPECT_EQ(gated.gear_switches, 0u);
  EXPECT_LE(gated.wall.value(), shifted.wall.value());
}

// --- the evaluation harness ----------------------------------------------------

TEST(PolicyEvaluator, SmokeAcrossTwoWorkloads) {
  // The CI smoke cell: two workloads x 4 nodes through the full roster.
  const PolicyEvaluator evaluator(cluster::athlon_cluster());
  for (const char* name : {"CG", "MG"}) {
    const auto workload = workloads::make_workload(name);
    const Evaluation eval = evaluator.evaluate(*workload, 4);
    EXPECT_EQ(eval.workload, name);
    EXPECT_EQ(eval.nodes, 4);
    ASSERT_EQ(eval.static_runs.size(), 6u);
    ASSERT_EQ(eval.gear_slowdowns.size(), 6u);
    EXPECT_DOUBLE_EQ(eval.gear_slowdowns.front(), 1.0);
    for (std::size_t g = 1; g < eval.gear_slowdowns.size(); ++g) {
      EXPECT_GE(eval.gear_slowdowns[g], eval.gear_slowdowns[g - 1]);
    }
    ASSERT_EQ(eval.policies.size(), 4u);
    for (const PolicyRow& row : eval.policies) {
      EXPECT_FALSE(row.signature.empty());
      EXPECT_GT(row.result.wall.value(), 0.0);
      EXPECT_GT(row.result.energy.value(), 0.0);
    }
    const std::string table = policy_table(eval);
    EXPECT_NE(table.find("slack-reclaimer"), std::string::npos);
    EXPECT_NE(table.find("timeout-downshift"), std::string::npos);
    const std::string svg =
        (std::filesystem::path(testing::TempDir()) / "policy.svg").string();
    policy_figure("policies", eval).write(svg);
    EXPECT_GT(std::filesystem::file_size(svg), 0u);
  }
}

TEST(PolicyEvaluator, PolicyPointsAreCachedAndBitIdenticalAcrossJobs) {
  const cluster::ClusterConfig config = cluster::athlon_cluster();
  const auto cg = workloads::make_workload("CG");
  TimeoutDownshift::Params tp;
  tp.park_gear = 5;
  const TimeoutDownshiftFactory factory(tp);
  const std::vector<exec::SweepPoint> points{
      exec::SweepPoint{cg.get(), 4, 0, 0, &factory},
      exec::SweepPoint{cg.get(), 8, 0, 0, &factory}};

  exec::ResultCache cache;
  exec::SweepOptions serial_options;
  serial_options.jobs = 1;
  serial_options.cache = &cache;
  const exec::SweepRunner serial(config, serial_options);
  const auto first = serial.run(points);
  const auto warm = serial.run(points);
  EXPECT_EQ(cache.stats().hits, 2u);

  exec::SweepOptions parallel_options;
  parallel_options.jobs = 2;
  const exec::SweepRunner parallel(config, parallel_options);
  const auto reran = parallel.run(points);
  ASSERT_EQ(first.size(), 2u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(exec::to_json(first[i]), exec::to_json(warm[i])) << i;
    EXPECT_EQ(exec::to_json(first[i]), exec::to_json(reran[i])) << i;
  }
}

TEST(PolicyEvaluator, ComposesWithFaultPlans) {
  // An adaptive controller and a straggler window in the same run: the
  // run completes and stays deterministic.
  cluster::ClusterConfig config = cluster::athlon_cluster();
  cluster::ExperimentRunner runner(config);
  const auto cg = workloads::make_workload("CG");
  faults::FaultPlan plan;
  plan.straggle(1, seconds(1.0), seconds(5.0), 4);
  TimeoutDownshift a(timeout_params(), 4);
  TimeoutDownshift b(timeout_params(), 4);
  cluster::RunOptions options;
  options.faults = &plan;
  options.policy = &a;
  const cluster::RunResult first = runner.run(*cg, 4, options);
  options.policy = &b;
  const cluster::RunResult second = runner.run(*cg, 4, options);
  EXPECT_EQ(exec::to_json(first), exec::to_json(second));
  EXPECT_GT(first.wall.value(), 0.0);
}

}  // namespace
}  // namespace gearsim::policy
