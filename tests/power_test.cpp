// Unit tests for the power-measurement substrate: the exact piecewise
// integrator and the sampling multimeter (the paper's wall-outlet rig).
#include <gtest/gtest.h>

#include "power/energy_meter.hpp"
#include "power/multimeter.hpp"
#include "sim/engine.hpp"

namespace gearsim::power {
namespace {

TEST(EnergyMeter, IntegratesPiecewiseConstantExactly) {
  EnergyMeter m(1);
  m.set_power(0, seconds(0.0), watts(100.0), NodeState::kActive);
  m.set_power(0, seconds(2.0), watts(50.0), NodeState::kIdle);
  m.finish(seconds(5.0));
  EXPECT_DOUBLE_EQ(m.node(0).total.value(), 100.0 * 2 + 50.0 * 3);
  EXPECT_DOUBLE_EQ(m.node(0).active.value(), 200.0);
  EXPECT_DOUBLE_EQ(m.node(0).idle.value(), 150.0);
  EXPECT_DOUBLE_EQ(m.node(0).active_time.value(), 2.0);
  EXPECT_DOUBLE_EQ(m.node(0).idle_time.value(), 3.0);
}

TEST(EnergyMeter, MeanPowers) {
  EnergyMeter m(1);
  m.set_power(0, seconds(0.0), watts(120.0), NodeState::kActive);
  m.set_power(0, seconds(1.0), watts(80.0), NodeState::kActive);
  m.set_power(0, seconds(3.0), watts(90.0), NodeState::kIdle);
  m.finish(seconds(4.0));
  // Active: 120*1 + 80*2 = 280 J over 3 s.
  EXPECT_NEAR(m.node(0).mean_active_power().value(), 280.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.node(0).mean_idle_power().value(), 90.0);
}

TEST(EnergyMeter, AggregatesAcrossNodes) {
  EnergyMeter m(3);
  for (std::size_t n = 0; n < 3; ++n) {
    m.set_power(n, seconds(0.0), watts(10.0 * (n + 1)), NodeState::kActive);
  }
  m.finish(seconds(1.0));
  EXPECT_DOUBLE_EQ(m.total_energy().value(), 10.0 + 20.0 + 30.0);
  EXPECT_DOUBLE_EQ(m.total_active_energy().value(), 60.0);
  EXPECT_DOUBLE_EQ(m.total_idle_energy().value(), 0.0);
}

TEST(EnergyMeter, ZeroDurationSegmentsContributeNothing) {
  EnergyMeter m(1);
  m.set_power(0, seconds(0.0), watts(100.0), NodeState::kIdle);
  m.set_power(0, seconds(0.0), watts(5000.0), NodeState::kActive);
  m.set_power(0, seconds(0.0), watts(100.0), NodeState::kIdle);
  m.finish(seconds(1.0));
  EXPECT_DOUBLE_EQ(m.node(0).total.value(), 100.0);
}

TEST(EnergyMeter, RejectsTimeTravelAndBadInput) {
  EnergyMeter m(1);
  m.set_power(0, seconds(1.0), watts(10.0), NodeState::kActive);
  EXPECT_THROW(m.set_power(0, seconds(0.5), watts(10.0), NodeState::kActive),
               ContractError);
  EXPECT_THROW(m.set_power(0, seconds(2.0), watts(-1.0), NodeState::kActive),
               ContractError);
  EXPECT_THROW(m.set_power(1, seconds(2.0), watts(1.0), NodeState::kActive),
               ContractError);
  m.finish(seconds(2.0));
  EXPECT_THROW(m.finish(seconds(3.0)), ContractError);
}

TEST(EnergyMeter, ProfileRecording) {
  EnergyMeter m(1);
  m.enable_profile_recording();
  m.set_power(0, seconds(0.0), watts(100.0), NodeState::kActive);
  m.set_power(0, seconds(1.0), watts(90.0), NodeState::kIdle);
  m.finish(seconds(2.0));
  const auto& prof = m.profile(0);
  ASSERT_EQ(prof.size(), 3u);  // Two transitions + the closing sample.
  EXPECT_DOUBLE_EQ(prof[0].power.value(), 100.0);
  EXPECT_EQ(prof[1].state, NodeState::kIdle);
  EXPECT_DOUBLE_EQ(prof[2].time.value(), 2.0);
}

TEST(EnergyMeter, ProfileRequiresOptIn) {
  EnergyMeter m(1);
  m.set_power(0, seconds(0.0), watts(1.0), NodeState::kIdle);
  m.finish(seconds(1.0));
  EXPECT_THROW((void)m.profile(0), ContractError);
}

TEST(EnergyMeter, InstantaneousReadsLastLevel) {
  EnergyMeter m(1);
  m.set_power(0, seconds(0.0), watts(42.0), NodeState::kActive);
  EXPECT_DOUBLE_EQ(m.instantaneous(0).value(), 42.0);
}

// --- multimeter -----------------------------------------------------------------

TEST(Multimeter, ConstantPowerIntegratesExactly) {
  sim::Engine engine;
  Multimeter meter(engine, MultimeterConfig{40.0, 0.0, 1},
                   [] { return watts(100.0); });
  meter.start();
  engine.schedule_at(seconds(10.0), [&] { meter.stop(); });
  engine.run();
  EXPECT_NEAR(meter.energy().value(), 1000.0, 1e-9);
  EXPECT_GE(meter.sample_count(), 400u);
}

TEST(Multimeter, TracksAStepChangeWithinSamplePeriodError) {
  sim::Engine engine;
  Watts level = watts(150.0);
  Multimeter meter(engine, MultimeterConfig{50.0, 0.0, 1},
                   [&] { return level; });
  meter.start();
  engine.schedule_at(seconds(5.0), [&] { level = watts(90.0); });
  engine.schedule_at(seconds(10.0), [&] { meter.stop(); });
  engine.run();
  const double exact = 150.0 * 5 + 90.0 * 5;
  // Trapezoid error on one step is bounded by dP * sample_period / 2.
  EXPECT_NEAR(meter.energy().value(), exact, 60.0 * (1.0 / 50.0));
}

TEST(Multimeter, NoiseAveragesOut) {
  sim::Engine engine;
  Multimeter meter(engine, MultimeterConfig{200.0, 5.0, 7},
                   [] { return watts(100.0); });
  meter.start();
  engine.schedule_at(seconds(20.0), [&] { meter.stop(); });
  engine.run();
  EXPECT_NEAR(meter.energy().value(), 2000.0, 25.0);
}

TEST(Multimeter, MatchesExactMeterOnASimulatedWorkloadProfile) {
  // The validation the paper's rig cannot do: compare the sampling path
  // against closed-form integration of the same piecewise profile.
  sim::Engine engine;
  EnergyMeter exact(1);
  exact.set_power(0, seconds(0.0), watts(145.0), NodeState::kActive);
  Multimeter sampled(engine, MultimeterConfig{40.0, 0.0, 1},
                     [&] { return exact.instantaneous(0); });
  sampled.start();
  // Alternate active/idle every 0.5 s for 8 s.
  for (int k = 1; k <= 16; ++k) {
    const bool idle = k % 2 == 1;
    engine.schedule_at(seconds(0.5 * k), [&, idle] {
      exact.set_power(0, engine.now(), idle ? watts(95.0) : watts(145.0),
                      idle ? NodeState::kIdle : NodeState::kActive);
    });
  }
  engine.schedule_at(seconds(8.0), [&] { sampled.stop(); });
  engine.run();
  exact.finish(seconds(8.0));
  const double rel_error = std::abs(sampled.energy().value() -
                                    exact.node(0).total.value()) /
                           exact.node(0).total.value();
  EXPECT_LT(rel_error, 0.02);  // "Several tens of samples a second" is
                               // plenty for 0.5 s phases.
}

TEST(Multimeter, StopWithoutStartThrows) {
  sim::Engine engine;
  Multimeter meter(engine, MultimeterConfig{}, [] { return watts(1.0); });
  EXPECT_THROW(meter.stop(), ContractError);
}

TEST(Multimeter, RestartAfterStop) {
  sim::Engine engine;
  Multimeter meter(engine, MultimeterConfig{100.0, 0.0, 1},
                   [] { return watts(10.0); });
  meter.start();
  engine.schedule_at(seconds(1.0), [&] { meter.stop(); });
  engine.schedule_at(seconds(2.0), [&] { meter.start(); });
  engine.schedule_at(seconds(3.0), [&] { meter.stop(); });
  engine.run();
  // Two 1-second windows at 10 W; the gap (with its own start sample)
  // contributes one inter-window trapezoid of 10 W * 1 s.
  EXPECT_NEAR(meter.energy().value(), 30.0, 0.2);
}

}  // namespace
}  // namespace gearsim::power
