// Tests for the what-if query service (src/serve/): wire protocol
// round-trips, in-flight dedup, bounded admission, the sharded disk
// store with per-shard budgets and preload, and the Service itself —
// whose responses must be byte-identical to a cold SweepRunner whether
// they came from a simulation, the hot LRU, the disk store, a coalesced
// neighbor, or a quarantine recovery.
//
// The Soak* tests are the exactly-once gate: N concurrent clients
// hammering one key set — with store writes torn mid-run by failpoints —
// must cost exactly one simulation per unique point and read identical
// bytes, and a cold restart over the damaged store must quarantine and
// recompute exactly the torn entries.  The Daemon* tests cover the
// AF_UNIX transport end to end.  See docs/SERVICE.md.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/config.hpp"
#include "exec/inflight.hpp"
#include "exec/result_cache.hpp"
#include "exec/result_io.hpp"
#include "exec/store.hpp"
#include "exec/sweep_runner.hpp"
#include "policy/evaluator.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "util/assert.hpp"
#include "util/failpoint.hpp"
#include "util/json.hpp"
#include "workloads/registry.hpp"

namespace gearsim::serve {
namespace {

using util::FailpointSpec;
using util::ScopedFailpoint;

/// A scratch directory removed on destruction, for disk-store tests.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& tag)
      : path(std::filesystem::temp_directory_path() /
             ("gearsim_serve_test_" + tag)) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

/// The test query: Jacobi is in the workload registry and simulates in
/// milliseconds, so dedup/soak tests stay cheap.
Request jacobi_sweep() {
  Request q;
  q.type = "sweep";
  q.workload = "Jacobi";
  q.nodes = 2;
  return q;
}

/// What a cold, cacheless `gearsim sweep` computes for `q` — the bytes
/// every served answer is diffed against.
std::vector<cluster::RunResult> cold_sweep(const Request& q) {
  const cluster::ClusterConfig config = cluster::athlon_cluster();
  const auto workload = workloads::make_workload(q.workload);
  const exec::SweepRunner runner(config, exec::SweepOptions{});
  std::vector<exec::SweepPoint> points;
  for (std::size_t g = 0; g < config.gears.size(); ++g) {
    for (int rep = 0; rep < q.repeat; ++rep) {
      points.push_back(exec::SweepPoint{workload.get(), q.nodes, g, rep});
    }
  }
  return runner.run(points);
}

ServiceOptions memory_only_options() {
  ServiceOptions options;
  options.jobs = 2;
  return options;
}

// ---- protocol ---------------------------------------------------------------

TEST(ServeProtocolTest, RequestRoundTripsThroughItsCanonicalLine) {
  Request q;
  q.type = "run";
  q.cluster = "sun";
  q.workload = "LU";
  q.nodes = 8;
  q.gear = 3;
  q.rep = 2;
  q.repeat = 5;
  const std::string line = render_request(q);
  const Request back = parse_request(line);
  EXPECT_EQ(render_request(back), line);
  EXPECT_EQ(back.cluster, "sun");
  EXPECT_EQ(back.gear, 3);
}

TEST(ServeProtocolTest, MissingFieldsTakeCliDefaults) {
  const Request q = parse_request("{\"type\":\"sweep\"}");
  EXPECT_EQ(q.cluster, "athlon");
  EXPECT_EQ(q.workload, "CG");
  EXPECT_EQ(q.nodes, 4);
  EXPECT_EQ(q.repeat, 1);
}

TEST(ServeProtocolTest, RejectsMalformedRequests) {
  EXPECT_THROW((void)parse_request("not json"), ContractError);
  EXPECT_THROW((void)parse_request("[1,2]"), ContractError);
  EXPECT_THROW((void)parse_request("{\"type\":\"dance\"}"), ContractError);
  EXPECT_THROW((void)parse_request("{\"type\":\"run\",\"nodes\":0}"),
               ContractError);
  EXPECT_THROW((void)parse_request("{\"type\":\"run\",\"gear\":0}"),
               ContractError);
}

TEST(ServeProtocolTest, ResultsSurviveTheResponseRoundTrip) {
  const Request q = jacobi_sweep();
  const std::vector<cluster::RunResult> results = cold_sweep(q);
  const std::string response = sweep_response(q, results);
  const std::vector<cluster::RunResult> back =
      results_from_response(json::parse(response));
  ASSERT_EQ(back.size(), results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    // to_json is the bit-identity fingerprint used by the cache tests.
    EXPECT_EQ(exec::to_json(back[i]), exec::to_json(results[i]));
  }
}

TEST(ServeProtocolTest, BackpressureAndErrorResponsesAreStructured) {
  const json::Value rejected = json::parse(rejected_response(250));
  EXPECT_EQ(json::field(rejected.as_object(), "status").as_string(),
            "rejected");
  EXPECT_EQ(json::field(rejected.as_object(), "retry_after_ms").as_int(), 250);
  const json::Value error = json::parse(error_response("boom \"quoted\""));
  EXPECT_EQ(json::field(error.as_object(), "status").as_string(), "error");
  EXPECT_EQ(json::field(error.as_object(), "error").as_string(),
            "boom \"quoted\"");
}

// ---- in-flight dedup --------------------------------------------------------

TEST(InflightTableTest, FollowersReceiveTheLeadersResult) {
  const Request q = jacobi_sweep();
  const cluster::RunResult result = cold_sweep(q)[0];
  exec::InflightTable table;
  const auto leader = table.claim("k");
  ASSERT_TRUE(leader.leader);
  const auto follower = table.claim("k");
  EXPECT_FALSE(follower.leader);
  EXPECT_EQ(table.open(), 1u);

  table.publish("k", leader, result);
  const exec::InflightTable::WaitResult w = table.wait(follower);
  ASSERT_EQ(w.outcome, exec::InflightTable::Outcome::kReady);
  EXPECT_EQ(exec::to_json(*w.result), exec::to_json(result));
  EXPECT_EQ(table.open(), 0u);

  const exec::InflightTable::Stats s = table.stats();
  EXPECT_EQ(s.leaders, 1u);
  EXPECT_EQ(s.coalesced, 1u);
  EXPECT_EQ(s.published, 1u);
}

TEST(InflightTableTest, FailurePropagatesAndTheKeyReopens) {
  exec::InflightTable table;
  const auto leader = table.claim("k");
  const auto follower = table.claim("k");
  table.fail("k", leader, "engine exploded");
  const exec::InflightTable::WaitResult w = table.wait(follower);
  ASSERT_EQ(w.outcome, exec::InflightTable::Outcome::kFailed);
  EXPECT_EQ(w.error, "engine exploded");
  // A failed round is closed, not poisoned: the next claim leads anew.
  EXPECT_TRUE(table.claim("k").leader);
}

TEST(InflightTableTest, AbandonSendsFollowersBackToTheRace) {
  exec::InflightTable table;
  const auto leader = table.claim("k");
  const auto follower = table.claim("k");
  table.abandon("k", leader);
  EXPECT_EQ(table.wait(follower).outcome,
            exec::InflightTable::Outcome::kAbandoned);
  EXPECT_TRUE(table.claim("k").leader);
  EXPECT_EQ(table.stats().abandoned, 1u);
}

// ---- admission --------------------------------------------------------------

TEST(AdmissionGateTest, OversizedBatchesRejectImmediately) {
  AdmissionGate gate({/*admit=*/4, /*queue=*/16});
  EXPECT_FALSE(gate.acquire(5));
  EXPECT_EQ(gate.stats().rejected, 1u);
  EXPECT_TRUE(gate.acquire(4));
}

TEST(AdmissionGateTest, QueueOverflowRejectsDeterministically) {
  AdmissionGate gate({/*admit=*/2, /*queue=*/1});
  ASSERT_TRUE(gate.acquire(2));
  // A 2-unit batch cannot queue behind a 1-slot queue: this is the
  // deterministic reject path, no timing involved.
  EXPECT_FALSE(gate.acquire(2));
  const AdmissionGate::Stats s = gate.stats();
  EXPECT_EQ(s.admitted, 1u);
  EXPECT_EQ(s.rejected, 1u);
  gate.release(2);
  EXPECT_TRUE(gate.acquire(2));
}

TEST(AdmissionGateTest, QueuedAcquirersWakeOnRelease) {
  AdmissionGate gate({/*admit=*/1, /*queue=*/4});
  ASSERT_TRUE(gate.acquire(1));
  bool acquired = false;
  std::thread waiter([&] { acquired = gate.acquire(1); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gate.release(1);
  waiter.join();
  EXPECT_TRUE(acquired);
  const AdmissionGate::Stats s = gate.stats();
  EXPECT_EQ(s.admitted, 2u);
  EXPECT_EQ(s.queued, 1u);
  EXPECT_EQ(s.rejected, 0u);
}

// ---- sharded disk store -----------------------------------------------------

/// Cache keys of the Jacobi sweep's points, for direct-store tests.
std::vector<exec::CacheKey> jacobi_keys() {
  const cluster::ClusterConfig config = cluster::athlon_cluster();
  const auto workload = workloads::make_workload("Jacobi");
  const exec::SweepRunner runner(config, exec::SweepOptions{});
  std::vector<exec::CacheKey> keys;
  for (std::size_t g = 0; g < config.gears.size(); ++g) {
    keys.push_back(
        runner.point_key(exec::SweepPoint{workload.get(), 2, g, 0}));
  }
  return keys;
}

TEST(ShardedStoreTest, EntriesLandUnderTheirHashPrefix) {
  const TempDir dir("layout");
  exec::ResultCache::Options options;
  options.disk_dir = dir.path.string();
  options.shard_digits = 2;
  exec::ResultCache cache(options);
  const std::vector<exec::CacheKey> keys = jacobi_keys();
  const std::vector<cluster::RunResult> results = cold_sweep(jacobi_sweep());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    cache.insert(keys[i], results[i]);
  }
  for (const exec::CacheKey& k : keys) {
    const std::string hex = k.hex();
    EXPECT_TRUE(std::filesystem::exists(dir.path / hex.substr(0, 2) /
                                        (hex + ".json")))
        << hex;
  }
  // store_stats sees the same layout the cache wrote.
  const exec::StoreStats stats = exec::store_stats(dir.path.string());
  EXPECT_EQ(stats.total_entries(), keys.size());
  EXPECT_GT(stats.total_bytes(), 0u);
  EXPECT_EQ(stats.total_quarantined(), 0u);
}

TEST(ShardedStoreTest, BudgetEvictsLeastRecentlyTouchedAndKeepsALedger) {
  const TempDir dir("budget");
  exec::ResultCache::Options options;
  options.disk_dir = dir.path.string();
  options.shard_entry_budget = 2;  // shard_digits 0: the root is one shard.
  const std::vector<exec::CacheKey> keys = jacobi_keys();
  const std::vector<cluster::RunResult> results = cold_sweep(jacobi_sweep());
  {
    exec::ResultCache cache(options);
    for (std::size_t i = 0; i < 4; ++i) cache.insert(keys[i], results[i]);
    EXPECT_EQ(cache.stats().disk_evictions, 2u);
  }
  std::size_t on_disk = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir.path)) {
    if (e.path().extension() == ".json") ++on_disk;
  }
  EXPECT_EQ(on_disk, 2u);
  // The lifetime total survives in the .evicted ledger and shows up in
  // store_stats / `gearsim cache stats`.
  EXPECT_EQ(exec::read_eviction_ledger(dir.path.string()), 2u);
  EXPECT_EQ(exec::store_stats(dir.path.string()).total_evictions(), 2u);

  // A fresh cache seeds its budget state from the scan: two more inserts
  // evict two more, continuing the ledger rather than resetting it.
  exec::ResultCache again(options);
  again.insert(keys[4], results[4]);
  again.insert(keys[5], results[5]);
  EXPECT_EQ(exec::read_eviction_ledger(dir.path.string()), 4u);
}

TEST(ShardedStoreTest, PreloadWarmStartsTheMemoryTier) {
  const TempDir dir("preload");
  exec::ResultCache::Options options;
  options.disk_dir = dir.path.string();
  options.shard_digits = 1;
  const std::vector<exec::CacheKey> keys = jacobi_keys();
  const std::vector<cluster::RunResult> results = cold_sweep(jacobi_sweep());
  {
    exec::ResultCache writer(options);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      writer.insert(keys[i], results[i]);
    }
  }
  exec::ResultCache warm(options);
  EXPECT_EQ(warm.preload(), keys.size());
  EXPECT_EQ(warm.stats().preloaded, keys.size());
  // Every lookup is now a *memory* hit: preload already paid the disk.
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto hit = warm.lookup(keys[i]);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(exec::to_json(*hit), exec::to_json(results[i]));
  }
  EXPECT_EQ(warm.stats().hits, keys.size());
  EXPECT_EQ(warm.stats().disk_hits, 0u);
}

// ---- the service ------------------------------------------------------------

TEST(ServiceTest, SweepResponseIsByteIdenticalToAColdRunner) {
  Service service(memory_only_options());
  const Request q = jacobi_sweep();
  const std::string expected = sweep_response(q, cold_sweep(q));
  EXPECT_EQ(service.handle_line(render_request(q)), expected);
  EXPECT_EQ(service.simulations(), 6u);

  // Second ask: pure cache hits, same bytes, no new simulations.
  EXPECT_EQ(service.handle_line(render_request(q)), expected);
  EXPECT_EQ(service.simulations(), 6u);
}

TEST(ServiceTest, RunQueryServesOnePoint) {
  Service service(memory_only_options());
  Request q = jacobi_sweep();
  q.type = "run";
  q.gear = 3;
  const std::string expected =
      run_response(q, cold_sweep(jacobi_sweep())[2]);  // gear 3 = index 2.
  EXPECT_EQ(service.handle_line(render_request(q)), expected);
  EXPECT_EQ(service.simulations(), 1u);
}

TEST(ServiceTest, RaceMatchesTheLocalPolicyEvaluator) {
  Service service(memory_only_options());
  Request q = jacobi_sweep();
  q.type = "race";
  const policy::PolicyEvaluator evaluator(
      cluster::athlon_cluster(), policy::PolicyEvaluator::Options{});
  const policy::Evaluation local =
      evaluator.evaluate(*workloads::make_workload("Jacobi"), q.nodes);
  const std::string response = service.handle_line(render_request(q));
  EXPECT_EQ(response, race_response(q, local));
  // And the client-side reassembly reproduces the evaluation record.
  const policy::Evaluation back =
      evaluation_from_response(json::parse(response));
  ASSERT_EQ(back.policies.size(), local.policies.size());
  for (std::size_t i = 0; i < local.policies.size(); ++i) {
    EXPECT_EQ(back.policies[i].name, local.policies[i].name);
    EXPECT_EQ(back.policies[i].energy_delta, local.policies[i].energy_delta);
    EXPECT_EQ(back.policies[i].on_frontier, local.policies[i].on_frontier);
  }
}

TEST(ServiceTest, FailuresBecomeErrorResponses) {
  Service service(memory_only_options());
  const auto status_of = [&](const std::string& line) {
    return json::field(json::parse(service.handle_line(line)).as_object(),
                       "status")
        .as_string();
  };
  EXPECT_EQ(status_of("{\"type\":\"run\",\"workload\":\"NOPE\"}"), "error");
  EXPECT_EQ(status_of("{\"type\":\"run\",\"gear\":99}"), "error");
  EXPECT_EQ(status_of("garbage"), "error");
  // A bad query leaves no open in-flight rounds behind.
  EXPECT_EQ(service.inflight_stats().leaders, 0u);
}

TEST(ServiceTest, StatsQueryExposesEveryCounterGroup) {
  ServiceOptions options = memory_only_options();
  options.wall_profile = true;
  Service service(options);
  (void)service.handle_line(render_request(jacobi_sweep()));
  const json::Value stats =
      json::parse(service.handle_line("{\"type\":\"stats\"}"));
  const json::Object& obj = stats.as_object();
  EXPECT_EQ(json::field(obj, "type").as_string(), "stats");
  const json::Object& cache = json::field(obj, "cache").as_object();
  EXPECT_EQ(json::field(cache, "insertions").as_u64(), 6u);
  const json::Object& svc = json::field(obj, "service").as_object();
  EXPECT_EQ(json::field(svc, "simulations").as_u64(), 6u);
  EXPECT_TRUE(json::field(obj, "gate").is_object());
  EXPECT_TRUE(json::field(obj, "inflight").is_object());
  EXPECT_TRUE(json::field(obj, "shards").is_array());
  // --wall-profile: the sweep left a latency histogram + counter behind.
  const json::Object& metrics = json::field(obj, "metrics").as_object();
  EXPECT_TRUE(json::find(metrics, "serve.requests.sweep") != nullptr);
}

TEST(ServiceTest, ShutdownRequestFlipsTheFlag) {
  Service service(memory_only_options());
  EXPECT_FALSE(service.shutdown_requested());
  EXPECT_EQ(service.handle_line("{\"type\":\"shutdown\"}"),
            shutdown_response());
  EXPECT_TRUE(service.shutdown_requested());
}

TEST(ServiceTest, AdmissionRejectCarriesTheConfiguredRetryHint) {
  ServiceOptions options = memory_only_options();
  options.admission.admit = 1;
  options.admission.queue = 0;
  options.retry_after_ms = 77;
  Service service(std::move(options));

  // Stretch the first query's simulation so the second one arrives while
  // the gate is full (job.slow sleeps `arg` ms inside the supervisor).
  FailpointSpec slow;
  slow.arg = 600;
  const ScopedFailpoint fp("exec.supervisor.job.slow", slow);
  Request first = jacobi_sweep();
  first.type = "run";
  std::string first_response;
  std::thread holder([&] {
    first_response = service.handle_line(render_request(first));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  Request second = first;
  second.gear = 2;  // Different key: a real admission attempt, not dedup.
  EXPECT_EQ(service.handle_line(render_request(second)),
            rejected_response(77));
  holder.join();
  EXPECT_EQ(json::field(json::parse(first_response).as_object(), "status")
                .as_string(),
            "ok");
  EXPECT_EQ(service.admission_stats().rejected, 1u);
  // The rejected query settled its claim; nothing is left in flight.
  const std::string retry = service.handle_line(render_request(second));
  EXPECT_EQ(json::field(json::parse(retry).as_object(), "status").as_string(),
            "ok");
}

TEST(ServiceTest, ConcurrentIdenticalQueriesCoalesceOntoOneLeader) {
  Service service(memory_only_options());
  // Slow every point down so the followers provably arrive while the
  // leader is still simulating.
  FailpointSpec slow;
  slow.arg = 150;
  const ScopedFailpoint fp("exec.supervisor.job.slow", slow);
  const std::string line = render_request(jacobi_sweep());
  std::vector<std::string> responses(4);
  std::vector<std::thread> threads;
  threads.reserve(responses.size());
  for (std::size_t t = 0; t < responses.size(); ++t) {
    threads.emplace_back(
        [&, t] {
          if (t > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(60));
          }
          responses[t] = service.handle_line(line);
        });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& r : responses) EXPECT_EQ(r, responses[0]);
  EXPECT_EQ(service.simulations(), 6u);
  EXPECT_GT(service.inflight_stats().coalesced, 0u);
}

// ---- hot / cold / quarantine byte identity ----------------------------------

TEST(ServiceTest, DiskRestartsAndQuarantineRecoveryServeTheSameBytes) {
  const TempDir dir("identity");
  const Request q = jacobi_sweep();
  const std::string line = render_request(q);
  const std::string expected = sweep_response(q, cold_sweep(q));

  ServiceOptions options = memory_only_options();
  options.cache.disk_dir = dir.path.string();
  options.cache.shard_digits = 2;
  {
    // Cold daemon: six simulations, canonical bytes.
    Service cold(options);
    EXPECT_EQ(cold.handle_line(line), expected);
    EXPECT_EQ(cold.simulations(), 6u);
  }
  {
    // Warm restart with preload: zero simulations, identical bytes from
    // the memory tier.
    ServiceOptions warm_options = options;
    warm_options.preload = true;
    Service warm(warm_options);
    EXPECT_EQ(warm.cache().stats().preloaded, 6u);
    EXPECT_EQ(warm.handle_line(line), expected);
    EXPECT_EQ(warm.simulations(), 0u);
    EXPECT_EQ(warm.cache().stats().hits, 6u);
  }
  // Tear one stored entry, then restart cold: the damaged point is
  // quarantined and recomputed, the other five come from disk, and the
  // response is still the same bytes.
  std::filesystem::path victim;
  for (const auto& e :
       std::filesystem::recursive_directory_iterator(dir.path)) {
    if (e.path().extension() == ".json") {
      victim = e.path();
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  std::filesystem::resize_file(victim, 25);
  {
    Service repaired(options);
    EXPECT_EQ(repaired.handle_line(line), expected);
    EXPECT_EQ(repaired.simulations(), 1u);
    EXPECT_EQ(repaired.cache().stats().quarantined, 1u);
    EXPECT_EQ(repaired.cache().stats().disk_hits, 5u);
  }
}

TEST(ServeSoakTest, TornStoreWritesNeverLeakIntoResponses) {
  const TempDir dir("soak");
  const Request q = jacobi_sweep();
  const std::string line = render_request(q);
  const std::string expected = sweep_response(q, cold_sweep(q));

  ServiceOptions options = memory_only_options();
  options.cache.disk_dir = dir.path.string();
  options.cache.shard_digits = 1;
  std::uint64_t torn = 0;
  {
    Service service(options);
    // Tear two of the six store writes mid-soak (visits 2 and 5 of the
    // write-truncate failpoint, keeping 30 bytes).  Responses come from
    // the results in hand, so the damage must be invisible until a cold
    // restart reads the store.
    FailpointSpec spec;
    spec.skip = 1;
    spec.every = 3;
    spec.times = 2;
    spec.arg = 30;
    const ScopedFailpoint fp("exec.store.write.truncate", spec);

    std::vector<std::string> responses(8);
    std::vector<std::thread> clients;
    clients.reserve(responses.size());
    for (std::size_t t = 0; t < responses.size(); ++t) {
      clients.emplace_back(
          [&, t] { responses[t] = service.handle_line(line); });
    }
    for (std::thread& t : clients) t.join();
    for (const std::string& r : responses) EXPECT_EQ(r, expected);
    // The exactly-once invariant: 8 concurrent clients, 6 unique points,
    // 6 simulations — dedup and the cache absorbed the other 42.
    EXPECT_EQ(service.simulations(), 6u);
    torn = exec::verify_store(dir.path.string()).corrupt.size();
    EXPECT_EQ(torn, 2u);
  }
  // Cold restart over the damaged store: exactly the torn entries are
  // quarantined and recomputed; the bytes served never change.
  Service repaired(options);
  EXPECT_EQ(repaired.handle_line(line), expected);
  EXPECT_EQ(repaired.simulations(), torn);
}

// ---- daemon end to end ------------------------------------------------------

#if defined(__unix__) || defined(__APPLE__)

TEST(DaemonTest, ServesClientsOverAUnixSocketUntilShutdown) {
  const TempDir dir("daemon");
  const std::string socket = (dir.path / "s.sock").string();
  Service service(memory_only_options());
  Daemon daemon(service, {socket});
  daemon.start();
  EXPECT_TRUE(daemon.running());

  const Client client(socket);
  const Request q = jacobi_sweep();
  const std::string expected = sweep_response(q, cold_sweep(q));
  EXPECT_EQ(client.request(render_request(q)), expected);

  // Concurrent clients through the socket: same bytes, one simulation
  // per unique point (they all hit the cache or coalesce).
  std::vector<std::string> responses(6);
  std::vector<std::thread> clients;
  clients.reserve(responses.size());
  for (std::size_t t = 0; t < responses.size(); ++t) {
    clients.emplace_back([&, t] {
      responses[t] = Client(socket).request(render_request(q));
    });
  }
  for (std::thread& t : clients) t.join();
  for (const std::string& r : responses) EXPECT_EQ(r, expected);
  EXPECT_EQ(service.simulations(), 6u);

  EXPECT_EQ(client.request("{\"type\":\"shutdown\"}"), shutdown_response());
  daemon.wait();
  daemon.stop();
  EXPECT_FALSE(daemon.running());
  EXPECT_FALSE(std::filesystem::exists(socket));
  EXPECT_THROW((void)client.request("{\"type\":\"stats\"}"), ContractError);
}

TEST(DaemonTest, OneConnectionCanCarryManyRequests) {
  // The Client reconnects per request; the daemon itself must also
  // handle several lines on one connection (scripted clients do this).
  const TempDir dir("daemonmulti");
  const std::string socket = (dir.path / "s.sock").string();
  Service service(memory_only_options());
  Daemon daemon(service, {socket});
  daemon.start();
  const Client client(socket);
  EXPECT_EQ(json::field(
                json::parse(client.request("{\"type\":\"stats\"}")).as_object(),
                "type")
                .as_string(),
            "stats");
  EXPECT_EQ(json::field(
                json::parse(client.request("{\"type\":\"stats\"}")).as_object(),
                "type")
                .as_string(),
            "stats");
  daemon.request_stop();
  daemon.stop();
}

#endif  // __unix__ || __APPLE__

}  // namespace
}  // namespace gearsim::serve
