// Tests for the energy-aware batch scheduler: profile queries, placement
// feasibility under a power cap, queue disciplines, objectives, and the
// energy/makespan accounting identities.
#include <gtest/gtest.h>

#include "sched/scheduler.hpp"
#include "workloads/registry.hpp"

namespace gearsim::sched {
namespace {

/// Hand-built profile: nodes in {1, 2, 4}, two gears ("fast"/"slow").
/// Perfect scaling; slow gear: 1.5x time at 0.6x power (0.9x energy).
WorkloadProfile toy_profile(const std::string& name, double t1 = 100.0,
                            double p_fast = 200.0) {
  std::vector<ConfigPoint> points;
  for (int n : {1, 2, 4}) {
    const double t_fast = t1 / n;
    const double power_fast = p_fast * n;
    points.push_back(ConfigPoint{n, 0, 1, seconds(t_fast),
                                 watts(power_fast) * seconds(t_fast)});
    const double t_slow = 1.5 * t_fast;
    const double power_slow = 0.6 * power_fast;
    points.push_back(ConfigPoint{n, 1, 2, seconds(t_slow),
                                 watts(power_slow) * seconds(t_slow)});
  }
  return WorkloadProfile(name, std::move(points));
}

Machine lab(int nodes = 4, double cap = 10000.0, double idle = 10.0) {
  return Machine{nodes, watts(cap), watts(idle)};
}

// --- profiles ----------------------------------------------------------------

TEST(Profile, BestMinTimePicksWideAndFast) {
  const WorkloadProfile p = toy_profile("J");
  const auto best = p.best(WorkloadProfile::Objective::kMinTime, 4,
                           watts(1e9));
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->nodes, 4);
  EXPECT_EQ(best->gear_label, 1);
}

TEST(Profile, BestMinEnergyPicksSlowGear) {
  const WorkloadProfile p = toy_profile("J");
  const auto best = p.best(WorkloadProfile::Objective::kMinEnergy, 4,
                           watts(1e9));
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->gear_label, 2);
  // Energy ties across node counts (perfect scaling): fewest nodes wins.
  EXPECT_EQ(best->nodes, 1);
}

TEST(Profile, BestRespectsNodeAndPowerLimits) {
  const WorkloadProfile p = toy_profile("J");
  const auto narrow = p.best(WorkloadProfile::Objective::kMinTime, 2,
                             watts(1e9));
  ASSERT_TRUE(narrow.has_value());
  EXPECT_LE(narrow->nodes, 2);
  // Cap below even the 1-node slow config's 120 W: infeasible.
  EXPECT_FALSE(p.best(WorkloadProfile::Objective::kMinTime, 4, watts(100.0))
                   .has_value());
}

TEST(Profile, MeasureBuildsFullTable) {
  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  const auto cg = workloads::make_workload("CG");
  const WorkloadProfile profile = WorkloadProfile::measure(runner, *cg, 4);
  // Node counts {1, 2, 4} x 6 gears.
  EXPECT_EQ(profile.points().size(), 18u);
  EXPECT_EQ(profile.workload_name(), "CG");
  for (const auto& pt : profile.points()) {
    EXPECT_GT(pt.mean_power().value(), 0.0);
  }
}

TEST(Profile, RejectsDegenerateInput) {
  EXPECT_THROW(WorkloadProfile("x", {}), ContractError);
  EXPECT_THROW(
      WorkloadProfile("x", {ConfigPoint{0, 0, 1, seconds(1), joules(1)}}),
      ContractError);
}

// --- scheduler basics ------------------------------------------------------------

TEST(Scheduler, SingleJobRunsImmediately) {
  const WorkloadProfile p = toy_profile("J");
  const Scheduler sched(lab());
  const auto result = sched.schedule({Job{"a", &p}});
  ASSERT_EQ(result.placements.size(), 1u);
  EXPECT_DOUBLE_EQ(result.placements[0].start.value(), 0.0);
  EXPECT_DOUBLE_EQ(result.makespan.value(), 25.0);  // 4 nodes fast.
  EXPECT_DOUBLE_EQ(result.job_energy.value(), 200.0 * 4 * 25.0);
}

TEST(Scheduler, TwoJobsShareTheMachine) {
  const WorkloadProfile p = toy_profile("J");
  // 4 nodes: min-time would want 4 each; with two queued jobs FIFO places
  // the first on all 4, the second waits.
  const Scheduler sched(lab());
  const auto result = sched.schedule({Job{"a", &p}, Job{"b", &p}});
  const auto& a = result.placement("a");
  const auto& b = result.placement("b");
  EXPECT_DOUBLE_EQ(a.start.value(), 0.0);
  EXPECT_DOUBLE_EQ(b.start.value(), a.end.value());
  EXPECT_DOUBLE_EQ(result.makespan.value(), 50.0);
}

TEST(Scheduler, PowerCapForcesNarrowOrSlowPlacements) {
  const WorkloadProfile p = toy_profile("J");
  // Cap 520 W, idle 10 W: 4-node fast (800 W) infeasible; 4-node slow
  // (480 W) fits; min-time picks the fastest feasible = 2-node fast
  // (400 + 2*10 = 420 W) vs 4-node slow (480 W, 37.5 s)... 2-node fast is
  // 50 s; 4-node slow is 37.5 s -> slow-but-wide wins.
  const Scheduler sched(lab(4, 520.0, 10.0));
  const auto result = sched.schedule({Job{"a", &p}});
  EXPECT_EQ(result.placement("a").config.nodes, 4);
  EXPECT_EQ(result.placement("a").config.gear_label, 2);
  EXPECT_LE(result.peak_power.value(), 520.0);
}

TEST(Scheduler, CapAccountsForParkedNodes) {
  const WorkloadProfile p = toy_profile("J");
  // 1-node fast draws 200 W; 3 parked nodes draw 150 W.  Cap 340 W:
  // 200 + 150 = 350 > cap, so 1-node fast is infeasible even though the
  // job alone fits; 1-node slow is 120 + 150 = 270 W.
  const Scheduler sched(lab(4, 340.0, 50.0));
  const auto result = sched.schedule({Job{"a", &p}});
  EXPECT_EQ(result.placement("a").config.gear_label, 2);
}

TEST(Scheduler, ImpossibleJobThrowsUpFront) {
  const WorkloadProfile p = toy_profile("J");
  const Scheduler sched(lab(4, 125.0, 10.0));  // Under every config's draw.
  EXPECT_THROW((void)sched.schedule({Job{"a", &p}}), ContractError);
}

TEST(Scheduler, MachineValidation) {
  EXPECT_THROW(Scheduler(Machine{0, watts(100), watts(1)}), ContractError);
  // Cap below parked draw of the whole machine.
  EXPECT_THROW(Scheduler(Machine{10, watts(100), watts(50)}), ContractError);
}

// --- disciplines and objectives ----------------------------------------------------

TEST(Scheduler, GreedyBackfillsAroundAWideJob) {
  // Jobs that can ONLY run wide (4 nodes) vs a 1-node job.
  const WorkloadProfile wide(
      "wide", {ConfigPoint{4, 0, 1, seconds(25.0), joules(20000.0)}});
  const WorkloadProfile narrow(
      "narrow", {ConfigPoint{1, 0, 1, seconds(10.0), joules(2000.0)}});
  const std::vector<Job> queue = {Job{"w1", &wide}, Job{"w2", &wide},
                                  Job{"n", &narrow}};
  const Machine five{5, watts(1e9), watts(10.0)};
  // FIFO on a 5-node machine: w1 takes 4, w2 needs 4 but only 1 is free,
  // so it waits — and n waits behind it despite the free node.
  const auto fifo = Scheduler(five, WorkloadProfile::Objective::kMinTime,
                              QueueDiscipline::kFifo)
                        .schedule(queue);
  // Greedy backfills n onto the spare node immediately.
  const auto greedy = Scheduler(five, WorkloadProfile::Objective::kMinTime,
                                QueueDiscipline::kGreedy)
                          .schedule(queue);
  EXPECT_GT(fifo.placement("n").start.value(), 0.0);
  EXPECT_DOUBLE_EQ(greedy.placement("n").start.value(), 0.0);
  EXPECT_LE(greedy.makespan.value(), fifo.makespan.value());
}

TEST(Scheduler, MinEnergyObjectiveUsesLessJobEnergy) {
  const WorkloadProfile p = toy_profile("J");
  const std::vector<Job> queue = {Job{"a", &p}, Job{"b", &p}};
  const auto fast = Scheduler(lab(), WorkloadProfile::Objective::kMinTime)
                        .schedule(queue);
  const auto frugal =
      Scheduler(lab(), WorkloadProfile::Objective::kMinEnergy)
          .schedule(queue);
  EXPECT_LT(frugal.job_energy.value(), fast.job_energy.value());
  EXPECT_GE(frugal.makespan.value(), fast.makespan.value());
}

// --- accounting identities -----------------------------------------------------------

TEST(Scheduler, EnergyAndPeakIdentities) {
  const WorkloadProfile p = toy_profile("J");
  const Scheduler sched(lab(4, 900.0, 25.0));
  const auto result = sched.schedule({Job{"a", &p}, Job{"b", &p}});
  // Job energy is the sum of placed configurations' energies.
  Joules expected{};
  for (const auto& pl : result.placements) expected += pl.config.energy;
  EXPECT_DOUBLE_EQ(result.job_energy.value(), expected.value());
  EXPECT_DOUBLE_EQ(result.total_energy().value(),
                   (result.job_energy + result.idle_energy).value());
  EXPECT_LE(result.peak_power.value(), 900.0);
  EXPECT_GT(result.peak_power.value(), 0.0);
  // Placements never overlap beyond the machine's node count.
  for (const auto& x : result.placements) {
    int concurrent = 0;
    for (const auto& y : result.placements) {
      if (y.start < x.end && x.start < y.end) concurrent += y.config.nodes;
    }
    EXPECT_LE(concurrent, 4);
  }
}

TEST(Scheduler, IdleEnergyCoversParkedNodes) {
  // One 1-node job on a 4-node machine: 3 nodes parked for the whole run
  // plus the placement nodes... idle integral = 3 * idle * makespan.
  const WorkloadProfile narrow(
      "n", {ConfigPoint{1, 0, 1, seconds(10.0), joules(2000.0)}});
  const Scheduler sched(lab(4, 1e6, 30.0));
  const auto result = sched.schedule({Job{"a", &narrow}});
  EXPECT_DOUBLE_EQ(result.makespan.value(), 10.0);
  EXPECT_DOUBLE_EQ(result.idle_energy.value(), 3 * 30.0 * 10.0);
}

TEST(Scheduler, EndToEndWithMeasuredProfiles) {
  // Full pipeline: profile real workloads on the simulated cluster, then
  // schedule a mixed queue under the paper's rack-power scenario.
  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  const auto cg = workloads::make_workload("CG");
  const auto ep = workloads::make_workload("EP");
  const WorkloadProfile cg_prof = WorkloadProfile::measure(runner, *cg, 8);
  const WorkloadProfile ep_prof = WorkloadProfile::measure(runner, *ep, 8);
  const Machine rack{10, watts(900.0), watts(85.0)};
  const auto result =
      Scheduler(rack, WorkloadProfile::Objective::kMinTime)
          .schedule({Job{"cg", &cg_prof}, Job{"ep", &ep_prof}});
  EXPECT_EQ(result.placements.size(), 2u);
  EXPECT_LE(result.peak_power.value(), 900.0 + 1e-9);
  EXPECT_GT(result.makespan.value(), 0.0);
}

}  // namespace
}  // namespace gearsim::sched
