// Tests for the energy-aware batch scheduler: profile queries, placement
// feasibility under a power cap, queue disciplines, objectives, the
// energy/makespan accounting identities, the LoadLeveler job-script
// parser, the gear arbiter, and the multi-tenant BatchScheduler (cap
// invariant, power redistribution, wall-limit kills, determinism).
#include <gtest/gtest.h>

#include "exec/sweep_runner.hpp"
#include "obs/metrics.hpp"
#include "sched/scheduler.hpp"
#include "workloads/registry.hpp"

namespace gearsim::sched {
namespace {

/// Hand-built profile: nodes in {1, 2, 4}, two gears ("fast"/"slow").
/// Perfect scaling; slow gear: 1.5x time at 0.6x power (0.9x energy).
WorkloadProfile toy_profile(const std::string& name, double t1 = 100.0,
                            double p_fast = 200.0) {
  std::vector<ConfigPoint> points;
  for (int n : {1, 2, 4}) {
    const double t_fast = t1 / n;
    const double power_fast = p_fast * n;
    points.push_back(ConfigPoint{n, 0, 1, seconds(t_fast),
                                 watts(power_fast) * seconds(t_fast)});
    const double t_slow = 1.5 * t_fast;
    const double power_slow = 0.6 * power_fast;
    points.push_back(ConfigPoint{n, 1, 2, seconds(t_slow),
                                 watts(power_slow) * seconds(t_slow)});
  }
  return WorkloadProfile(name, std::move(points));
}

Machine lab(int nodes = 4, double cap = 10000.0, double idle = 10.0) {
  return Machine{nodes, watts(cap), watts(idle)};
}

// --- profiles ----------------------------------------------------------------

TEST(Profile, BestMinTimePicksWideAndFast) {
  const WorkloadProfile p = toy_profile("J");
  const auto best = p.best(WorkloadProfile::Objective::kMinTime, 4,
                           watts(1e9));
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->nodes, 4);
  EXPECT_EQ(best->gear_label, 1);
}

TEST(Profile, BestMinEnergyPicksSlowGear) {
  const WorkloadProfile p = toy_profile("J");
  const auto best = p.best(WorkloadProfile::Objective::kMinEnergy, 4,
                           watts(1e9));
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->gear_label, 2);
  // Energy ties across node counts (perfect scaling): fewest nodes wins.
  EXPECT_EQ(best->nodes, 1);
}

TEST(Profile, BestRespectsNodeAndPowerLimits) {
  const WorkloadProfile p = toy_profile("J");
  const auto narrow = p.best(WorkloadProfile::Objective::kMinTime, 2,
                             watts(1e9));
  ASSERT_TRUE(narrow.has_value());
  EXPECT_LE(narrow->nodes, 2);
  // Cap below even the 1-node slow config's 120 W: infeasible.
  EXPECT_FALSE(p.best(WorkloadProfile::Objective::kMinTime, 4, watts(100.0))
                   .has_value());
}

TEST(Profile, MeasureBuildsFullTable) {
  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  const auto cg = workloads::make_workload("CG");
  const WorkloadProfile profile = WorkloadProfile::measure(runner, *cg, 4);
  // Node counts {1, 2, 4} x 6 gears.
  EXPECT_EQ(profile.points().size(), 18u);
  EXPECT_EQ(profile.workload_name(), "CG");
  for (const auto& pt : profile.points()) {
    EXPECT_GT(pt.mean_power().value(), 0.0);
  }
}

TEST(Profile, RejectsDegenerateInput) {
  EXPECT_THROW(WorkloadProfile("x", {}), ContractError);
  EXPECT_THROW(
      WorkloadProfile("x", {ConfigPoint{0, 0, 1, seconds(1), joules(1)}}),
      ContractError);
}

// --- scheduler basics ------------------------------------------------------------

TEST(Scheduler, SingleJobRunsImmediately) {
  const WorkloadProfile p = toy_profile("J");
  const Scheduler sched(lab());
  const auto result = sched.schedule({Job{"a", &p}});
  ASSERT_EQ(result.placements.size(), 1u);
  EXPECT_DOUBLE_EQ(result.placements[0].start.value(), 0.0);
  EXPECT_DOUBLE_EQ(result.makespan.value(), 25.0);  // 4 nodes fast.
  EXPECT_DOUBLE_EQ(result.job_energy.value(), 200.0 * 4 * 25.0);
}

TEST(Scheduler, TwoJobsShareTheMachine) {
  const WorkloadProfile p = toy_profile("J");
  // 4 nodes: min-time would want 4 each; with two queued jobs FIFO places
  // the first on all 4, the second waits.
  const Scheduler sched(lab());
  const auto result = sched.schedule({Job{"a", &p}, Job{"b", &p}});
  const auto& a = result.placement("a");
  const auto& b = result.placement("b");
  EXPECT_DOUBLE_EQ(a.start.value(), 0.0);
  EXPECT_DOUBLE_EQ(b.start.value(), a.end.value());
  EXPECT_DOUBLE_EQ(result.makespan.value(), 50.0);
}

TEST(Scheduler, PowerCapForcesNarrowOrSlowPlacements) {
  const WorkloadProfile p = toy_profile("J");
  // Cap 520 W, idle 10 W: 4-node fast (800 W) infeasible; 4-node slow
  // (480 W) fits; min-time picks the fastest feasible = 2-node fast
  // (400 + 2*10 = 420 W) vs 4-node slow (480 W, 37.5 s)... 2-node fast is
  // 50 s; 4-node slow is 37.5 s -> slow-but-wide wins.
  const Scheduler sched(lab(4, 520.0, 10.0));
  const auto result = sched.schedule({Job{"a", &p}});
  EXPECT_EQ(result.placement("a").config.nodes, 4);
  EXPECT_EQ(result.placement("a").config.gear_label, 2);
  EXPECT_LE(result.peak_power.value(), 520.0);
}

TEST(Scheduler, CapAccountsForParkedNodes) {
  const WorkloadProfile p = toy_profile("J");
  // 1-node fast draws 200 W; 3 parked nodes draw 150 W.  Cap 340 W:
  // 200 + 150 = 350 > cap, so 1-node fast is infeasible even though the
  // job alone fits; 1-node slow is 120 + 150 = 270 W.
  const Scheduler sched(lab(4, 340.0, 50.0));
  const auto result = sched.schedule({Job{"a", &p}});
  EXPECT_EQ(result.placement("a").config.gear_label, 2);
}

TEST(Scheduler, ImpossibleJobThrowsUpFront) {
  const WorkloadProfile p = toy_profile("J");
  const Scheduler sched(lab(4, 125.0, 10.0));  // Under every config's draw.
  EXPECT_THROW((void)sched.schedule({Job{"a", &p}}), ContractError);
}

TEST(Scheduler, MachineValidation) {
  EXPECT_THROW(Scheduler(Machine{0, watts(100), watts(1)}), ContractError);
  // Cap below parked draw of the whole machine.
  EXPECT_THROW(Scheduler(Machine{10, watts(100), watts(50)}), ContractError);
}

// --- disciplines and objectives ----------------------------------------------------

TEST(Scheduler, GreedyBackfillsAroundAWideJob) {
  // Jobs that can ONLY run wide (4 nodes) vs a 1-node job.
  const WorkloadProfile wide(
      "wide", {ConfigPoint{4, 0, 1, seconds(25.0), joules(20000.0)}});
  const WorkloadProfile narrow(
      "narrow", {ConfigPoint{1, 0, 1, seconds(10.0), joules(2000.0)}});
  const std::vector<Job> queue = {Job{"w1", &wide}, Job{"w2", &wide},
                                  Job{"n", &narrow}};
  const Machine five{5, watts(1e9), watts(10.0)};
  // FIFO on a 5-node machine: w1 takes 4, w2 needs 4 but only 1 is free,
  // so it waits — and n waits behind it despite the free node.
  const auto fifo = Scheduler(five, WorkloadProfile::Objective::kMinTime,
                              QueueDiscipline::kFifo)
                        .schedule(queue);
  // Greedy backfills n onto the spare node immediately.
  const auto greedy = Scheduler(five, WorkloadProfile::Objective::kMinTime,
                                QueueDiscipline::kGreedy)
                          .schedule(queue);
  EXPECT_GT(fifo.placement("n").start.value(), 0.0);
  EXPECT_DOUBLE_EQ(greedy.placement("n").start.value(), 0.0);
  EXPECT_LE(greedy.makespan.value(), fifo.makespan.value());
}

TEST(Scheduler, MinEnergyObjectiveUsesLessJobEnergy) {
  const WorkloadProfile p = toy_profile("J");
  const std::vector<Job> queue = {Job{"a", &p}, Job{"b", &p}};
  const auto fast = Scheduler(lab(), WorkloadProfile::Objective::kMinTime)
                        .schedule(queue);
  const auto frugal =
      Scheduler(lab(), WorkloadProfile::Objective::kMinEnergy)
          .schedule(queue);
  EXPECT_LT(frugal.job_energy.value(), fast.job_energy.value());
  EXPECT_GE(frugal.makespan.value(), fast.makespan.value());
}

// --- accounting identities -----------------------------------------------------------

TEST(Scheduler, EnergyAndPeakIdentities) {
  const WorkloadProfile p = toy_profile("J");
  const Scheduler sched(lab(4, 900.0, 25.0));
  const auto result = sched.schedule({Job{"a", &p}, Job{"b", &p}});
  // Job energy is the sum of placed configurations' energies.
  Joules expected{};
  for (const auto& pl : result.placements) expected += pl.config.energy;
  EXPECT_DOUBLE_EQ(result.job_energy.value(), expected.value());
  EXPECT_DOUBLE_EQ(result.total_energy().value(),
                   (result.job_energy + result.idle_energy).value());
  EXPECT_LE(result.peak_power.value(), 900.0);
  EXPECT_GT(result.peak_power.value(), 0.0);
  // Placements never overlap beyond the machine's node count.
  for (const auto& x : result.placements) {
    int concurrent = 0;
    for (const auto& y : result.placements) {
      if (y.start < x.end && x.start < y.end) concurrent += y.config.nodes;
    }
    EXPECT_LE(concurrent, 4);
  }
}

TEST(Scheduler, IdleEnergyCoversParkedNodes) {
  // One 1-node job on a 4-node machine: 3 nodes parked for the whole run
  // plus the placement nodes... idle integral = 3 * idle * makespan.
  const WorkloadProfile narrow(
      "n", {ConfigPoint{1, 0, 1, seconds(10.0), joules(2000.0)}});
  const Scheduler sched(lab(4, 1e6, 30.0));
  const auto result = sched.schedule({Job{"a", &narrow}});
  EXPECT_DOUBLE_EQ(result.makespan.value(), 10.0);
  EXPECT_DOUBLE_EQ(result.idle_energy.value(), 3 * 30.0 * 10.0);
}

TEST(Scheduler, EndToEndWithMeasuredProfiles) {
  // Full pipeline: profile real workloads on the simulated cluster, then
  // schedule a mixed queue under the paper's rack-power scenario.
  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  const auto cg = workloads::make_workload("CG");
  const auto ep = workloads::make_workload("EP");
  const WorkloadProfile cg_prof = WorkloadProfile::measure(runner, *cg, 8);
  const WorkloadProfile ep_prof = WorkloadProfile::measure(runner, *ep, 8);
  const Machine rack{10, watts(900.0), watts(85.0)};
  const auto result =
      Scheduler(rack, WorkloadProfile::Objective::kMinTime)
          .schedule({Job{"cg", &cg_prof}, Job{"ep", &ep_prof}});
  EXPECT_EQ(result.placements.size(), 2u);
  EXPECT_LE(result.peak_power.value(), 900.0 + 1e-9);
  EXPECT_GT(result.makespan.value(), 0.0);
}

// --- cached profile measurement ----------------------------------------------

TEST(Profile, MeasureThroughSweepRunnerMatchesSerialAndCaches) {
  cluster::ExperimentRunner serial(cluster::athlon_cluster());
  const auto cg = workloads::make_workload("CG");
  const WorkloadProfile base = WorkloadProfile::measure(serial, *cg, 4);

  exec::ResultCache cache;
  exec::SweepOptions opts;
  opts.jobs = 2;
  opts.cache = &cache;
  const exec::SweepRunner runner(cluster::athlon_cluster(), opts);
  const WorkloadProfile warm = WorkloadProfile::measure(runner, *cg, 4);
  ASSERT_EQ(warm.points().size(), base.points().size());
  for (std::size_t i = 0; i < base.points().size(); ++i) {
    EXPECT_EQ(warm.points()[i].nodes, base.points()[i].nodes);
    EXPECT_EQ(warm.points()[i].gear_index, base.points()[i].gear_index);
    EXPECT_EQ(warm.points()[i].gear_label, base.points()[i].gear_label);
    EXPECT_EQ(warm.points()[i].time.value(), base.points()[i].time.value());
    EXPECT_EQ(warm.points()[i].energy.value(),
              base.points()[i].energy.value());
  }
  EXPECT_EQ(runner.cache_stats().misses, base.points().size());
  EXPECT_EQ(runner.cache_stats().hits, 0u);

  // The second measurement is served entirely from the cache — and is
  // still bit-identical.
  const WorkloadProfile again = WorkloadProfile::measure(runner, *cg, 4);
  EXPECT_EQ(runner.cache_stats().hits, base.points().size());
  for (std::size_t i = 0; i < base.points().size(); ++i) {
    EXPECT_EQ(again.points()[i].time.value(), base.points()[i].time.value());
    EXPECT_EQ(again.points()[i].energy.value(),
              base.points()[i].energy.value());
  }
}

// --- gear frontiers ----------------------------------------------------------

TEST(Profile, GearFrontierIsStrictlyMonotone) {
  const WorkloadProfile p = toy_profile("J");
  const auto ladder = p.gear_frontier(4);
  ASSERT_EQ(ladder.size(), 2u);
  EXPECT_EQ(ladder.front().gear_label, 1);  // Fastest first.
  EXPECT_EQ(ladder.back().gear_label, 2);
  EXPECT_LT(ladder[0].time.value(), ladder[1].time.value());
  EXPECT_GT(ladder[0].mean_power().value(), ladder[1].mean_power().value());
  EXPECT_TRUE(p.gear_frontier(3).empty());  // No points at this width.
}

TEST(Profile, GearFrontierPrunesDominatedPoints) {
  // "mid" is slower AND hungrier than "fast": off the frontier.
  std::vector<ConfigPoint> points;
  points.push_back(
      ConfigPoint{1, 0, 1, seconds(100.0), watts(200.0) * seconds(100.0)});
  points.push_back(
      ConfigPoint{1, 1, 2, seconds(120.0), watts(210.0) * seconds(120.0)});
  points.push_back(
      ConfigPoint{1, 2, 3, seconds(150.0), watts(120.0) * seconds(150.0)});
  const WorkloadProfile p("J", std::move(points));
  const auto ladder = p.gear_frontier(1);
  ASSERT_EQ(ladder.size(), 2u);
  EXPECT_EQ(ladder[0].gear_label, 1);
  EXPECT_EQ(ladder[1].gear_label, 3);
}

// --- job scripts -------------------------------------------------------------

TEST(JobScript, ParsesAFullLoadLevelerStanza) {
  const std::string text = R"(#!/bin/bash
#@ job_name = cg-large
#@ job_type = parallel
#@ class = general
#@ island_count = 1
#@ total_tasks = 8
#@ wall_clock_limit = 01:00:00
#@ energy_policy_tag = cg_tag
#@ minimize_time_to_solution = yes
#@ arrival = 120
#@ workload = CG
#@ queue
mpiexec -n 8 ./cg.B.8
)";
  const JobScript job = parse_job_script(text);
  EXPECT_EQ(job.id, "cg-large");
  EXPECT_EQ(job.workload, "CG");
  EXPECT_EQ(job.total_tasks, 8);
  EXPECT_DOUBLE_EQ(job.wall_clock_limit.value(), 3600.0);
  EXPECT_DOUBLE_EQ(job.arrival.value(), 120.0);
  EXPECT_EQ(job.tag, EnergyPolicyTag::kMinimizeTimeToSolution);
}

TEST(JobScript, ParsesMultipleStanzasInSubmissionOrder) {
  const std::string text =
      "#@ job_name = a\n#@ minimize_energy_to_solution = yes\n#@ queue\n"
      "#@ total_tasks = 2\n#@ queue\n";
  const auto jobs = parse_job_scripts(text);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].id, "a");
  EXPECT_EQ(jobs[0].tag, EnergyPolicyTag::kMinimizeEnergyToSolution);
  EXPECT_EQ(jobs[1].id, "job2");  // Positional default.
  EXPECT_EQ(jobs[1].total_tasks, 2);
  EXPECT_EQ(jobs[1].tag, EnergyPolicyTag::kNone);
  EXPECT_DOUBLE_EQ(jobs[1].wall_clock_limit.value(), 0.0);  // Unlimited.
}

TEST(JobScript, WallClockLimitForms) {
  EXPECT_DOUBLE_EQ(parse_wall_clock_limit("01:30:00").value(), 5400.0);
  EXPECT_DOUBLE_EQ(parse_wall_clock_limit("05:00").value(), 300.0);
  EXPECT_DOUBLE_EQ(parse_wall_clock_limit("90").value(), 90.0);
  EXPECT_THROW((void)parse_wall_clock_limit("1:2:3:4"), ContractError);
  EXPECT_THROW((void)parse_wall_clock_limit("abc"), ContractError);
  EXPECT_THROW((void)parse_wall_clock_limit("-5"), ContractError);
}

TEST(JobScript, EnergyPolicyTagBindings) {
  // The tag may name the policy directly, without a minimize_* line.
  const auto direct = parse_job_script(
      "#@ energy_policy_tag = minimize_energy_to_solution\n#@ queue\n");
  EXPECT_EQ(direct.tag, EnergyPolicyTag::kMinimizeEnergyToSolution);
  // A site-specific tag name with no minimize_* line means "none".
  const auto site = parse_job_script(
      "#@ energy_policy_tag = my_project_tag\n#@ queue\n");
  EXPECT_EQ(site.tag, EnergyPolicyTag::kNone);
  // Contradictory minimize_* lines are a script bug.
  EXPECT_THROW((void)parse_job_script(
                   "#@ minimize_time_to_solution = yes\n"
                   "#@ minimize_energy_to_solution = yes\n#@ queue\n"),
               ContractError);
}

TEST(JobScript, MalformedScriptsThrow) {
  // A trailing stanza that never queues is a script bug.
  EXPECT_THROW((void)parse_job_scripts("#@ job_name = lost\n"),
               ContractError);
  EXPECT_THROW((void)parse_job_scripts("#@ total_tasks = 0\n#@ queue\n"),
               ContractError);
  EXPECT_THROW((void)parse_job_scripts("#@ job_type = serial\n#@ queue\n"),
               ContractError);
  EXPECT_THROW((void)parse_job_scripts("#@ no equals sign here\n"),
               ContractError);
}

// --- gear arbiter ------------------------------------------------------------

TEST(Arbiter, GrantsHeadroomByPriorityClass) {
  const WorkloadProfile p = toy_profile("J");
  // 1-node ladder: fast 100 s @ 200 W, slow 150 s @ 120 W.  Budget 330 W
  // fits one upshift: the time-tagged job gets it regardless of
  // submission order.
  const GearArbiter arbiter(watts(330.0), watts(0.0));
  const std::vector<ArbiterJob> jobs = {
      ArbiterJob{&p, 1, EnergyPolicyTag::kNone},
      ArbiterJob{&p, 1, EnergyPolicyTag::kMinimizeTimeToSolution}};
  const auto outcome = arbiter.arbitrate(jobs, 0);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->gears[0].gear_label, 2);  // kNone stays slow.
  EXPECT_EQ(outcome->gears[1].gear_label, 1);  // Time-tagged runs fast.
  EXPECT_DOUBLE_EQ(outcome->draw.value(), 320.0);
}

TEST(Arbiter, MinEnergyJobNeverClimbsPastItsOptimalRung) {
  const WorkloadProfile p = toy_profile("J");
  // Slow is the energy optimum (0.9x): even with unlimited budget the
  // min-energy job holds it while the untagged job takes the headroom.
  const GearArbiter arbiter(watts(1e9), watts(0.0));
  const auto outcome = arbiter.arbitrate(
      {ArbiterJob{&p, 1, EnergyPolicyTag::kMinimizeEnergyToSolution},
       ArbiterJob{&p, 1, EnergyPolicyTag::kNone}},
      0);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->gears[0].gear_label, 2);
  EXPECT_EQ(outcome->gears[1].gear_label, 1);
}

TEST(Arbiter, InfeasibleWhenEvenTheFloorBustsTheBudget) {
  const WorkloadProfile p = toy_profile("J");
  // Cap 330 W minus two parked nodes at 100 W leaves 130 W — below the
  // two jobs' 240 W all-lowest-rung floor.
  const GearArbiter arbiter(watts(330.0), watts(100.0));
  EXPECT_FALSE(arbiter
                   .arbitrate({ArbiterJob{&p, 1, EnergyPolicyTag::kNone},
                               ArbiterJob{&p, 1, EnergyPolicyTag::kNone}},
                              2)
                   .has_value());
}

// --- batch scheduler ---------------------------------------------------------

JobScript spec(std::string id, int tasks,
               EnergyPolicyTag tag = EnergyPolicyTag::kNone,
               double arrival = 0.0, double limit = 0.0) {
  JobScript s;
  s.id = std::move(id);
  s.total_tasks = tasks;
  s.tag = tag;
  s.arrival = seconds(arrival);
  s.wall_clock_limit = seconds(limit);
  return s;
}

/// Every sample of the draw timeline obeys the cap (a tiny epsilon
/// absorbs re-ordered floating-point sums).
void expect_cap_invariant(const BatchResult& r, double cap) {
  const double eps = 1e-9 * (1.0 + cap);
  for (const auto& s : r.power_timeline) {
    EXPECT_LE(s.draw.value(), cap + eps);
  }
  EXPECT_LE(r.peak_power.value(), cap + eps);
  EXPECT_GE(r.min_headroom.value(), -eps);
}

/// The piecewise-constant timeline integral reproduces the energy books
/// exactly: the timeline is the authoritative record of the draw.
void expect_timeline_integral_matches(const BatchResult& r) {
  double integral = 0.0;
  for (std::size_t i = 0; i + 1 < r.power_timeline.size(); ++i) {
    integral += r.power_timeline[i].draw.value() *
                (r.power_timeline[i + 1].at - r.power_timeline[i].at).value();
  }
  EXPECT_NEAR(integral, r.total_energy().value(),
              1e-9 * (1.0 + r.total_energy().value()));
}

TEST(BatchScheduler, CompletionRedistributesPowerToTheSurvivor) {
  const WorkloadProfile p = toy_profile("J");
  // Two 1-node jobs under a 330 W cap (1-node fast 200 W, slow 120 W):
  // only one can run fast.  "a" gets the upshift; when it completes at
  // t=100, arbitration hands its 80 W back to "b", which finishes the
  // remaining third of its work at the fast gear.
  const BatchScheduler sched(Machine{2, watts(330.0), watts(0.0)});
  const std::vector<BatchJob> jobs = {BatchJob{spec("a", 1), &p},
                                      BatchJob{spec("b", 1), &p}};
  const BatchResult r = sched.schedule(jobs);
  EXPECT_DOUBLE_EQ(r.placement("a").end.value(), 100.0);
  EXPECT_EQ(r.placement("a").final_gear_label, 1);
  const BatchPlacement& b = r.placement("b");
  EXPECT_EQ(b.start_gear_label, 2);
  EXPECT_EQ(b.final_gear_label, 1);
  EXPECT_EQ(b.gear_changes, 1);
  EXPECT_NEAR(b.end.value(), 100.0 + 100.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.redistributed_watts.value(), 80.0);
  expect_cap_invariant(r, 330.0);
  expect_timeline_integral_matches(r);

  // The frozen-gear control arm: no redistribution, longer makespan.
  const BatchScheduler frozen(Machine{2, watts(330.0), watts(0.0)},
                              BatchOptions{QueueDiscipline::kFifo, false});
  const BatchResult f = frozen.schedule(jobs);
  EXPECT_DOUBLE_EQ(f.redistributed_watts.value(), 0.0);
  EXPECT_EQ(f.arbitrations, 0u);
  EXPECT_EQ(f.placement("b").gear_changes, 0);
  EXPECT_DOUBLE_EQ(f.makespan.value(), 150.0);
  EXPECT_GT(f.makespan.value(), r.makespan.value());
  expect_cap_invariant(f, 330.0);
}

TEST(BatchScheduler, CrashRedistributesTheVictimsBudget) {
  const WorkloadProfile p = toy_profile("J");
  // Cap 250 W: both 1-node jobs run slow (240 W).  A node dies at t=30
  // and kills "b"; arbitration immediately upshifts the survivor "a"
  // with the freed watts — the crashed job's budget is redistributed,
  // not parked.
  const std::vector<BatchJob> jobs = {BatchJob{spec("a", 1), &p},
                                      BatchJob{spec("b", 1), &p}};
  const std::vector<NodeOutage> outages = {
      NodeOutage{seconds(30.0), 1, seconds(1000.0)}};
  const BatchScheduler sched(Machine{2, watts(250.0), watts(0.0)});
  const BatchResult r = sched.schedule(jobs, outages);
  EXPECT_EQ(r.preemptions, 1);
  EXPECT_DOUBLE_EQ(r.wasted_energy.value(), 120.0 * 30.0);
  const BatchPlacement& a = r.placement("a");
  EXPECT_EQ(a.start_gear_label, 2);
  EXPECT_EQ(a.final_gear_label, 1);  // Upshifted when "b" died.
  EXPECT_EQ(a.gear_changes, 1);
  EXPECT_DOUBLE_EQ(a.end.value(), 110.0);  // 30 + 0.8 * 100.
  EXPECT_DOUBLE_EQ(r.redistributed_watts.value(), 80.0);
  // "b" re-runs once a node frees up: its completed placement is the
  // re-run (ScheduleResult::placement on a killed-then-rerun job).
  EXPECT_DOUBLE_EQ(r.placement("b").start.value(), 110.0);
  EXPECT_DOUBLE_EQ(r.makespan.value(), 210.0);
  expect_cap_invariant(r, 250.0);
  expect_timeline_integral_matches(r);

  // Without arbitration the survivor's gear never moves.
  const BatchScheduler frozen(Machine{2, watts(250.0), watts(0.0)},
                              BatchOptions{QueueDiscipline::kFifo, false});
  const BatchResult f = frozen.schedule(jobs, outages);
  EXPECT_DOUBLE_EQ(f.redistributed_watts.value(), 0.0);
  EXPECT_EQ(f.placement("a").gear_changes, 0);
  expect_cap_invariant(f, 250.0);
}

TEST(BatchScheduler, WallLimitKillsAJobHeldBelowItsProjectedGear) {
  const WorkloadProfile p = toy_profile("J");
  // "b" is admitted because its fastest gear (100 s) beats the 120 s
  // limit, but the time-tagged "a" holds the headroom, so "b" crawls at
  // the slow gear (150 s projected).  "a" completes at 100; "b" upshifts
  // but can no longer finish by its deadline and is killed at 120.
  const BatchScheduler sched(Machine{2, watts(330.0), watts(0.0)});
  const BatchResult r = sched.schedule(
      {BatchJob{spec("a", 1, EnergyPolicyTag::kMinimizeTimeToSolution), &p},
       BatchJob{spec("b", 1, EnergyPolicyTag::kNone, 0.0, 120.0), &p}});
  EXPECT_EQ(r.wall_limit_kills, 1);
  EXPECT_EQ(r.preemptions, 0);
  ASSERT_EQ(r.placements.size(), 1u);
  EXPECT_EQ(r.placements[0].job_id, "a");
  EXPECT_THROW((void)r.placement("b"), ContractError);
  EXPECT_DOUBLE_EQ(r.makespan.value(), 120.0);
  // 100 s at 120 W plus the post-upshift 20 s at 200 W.
  EXPECT_DOUBLE_EQ(r.wasted_energy.value(), 120.0 * 100.0 + 200.0 * 20.0);
  expect_timeline_integral_matches(r);
}

TEST(BatchScheduler, TwoVictimOutageRequeuesInSubmissionOrder) {
  // Both 2-node jobs die when 3 of 4 nodes go down at t=10; one node
  // stays down much longer, so only one job fits after the first repair
  // — the requeue order is observable: "a" must restart before "b".
  std::vector<ConfigPoint> points;
  points.push_back(
      ConfigPoint{2, 0, 1, seconds(30.0), watts(400.0) * seconds(30.0)});
  const WorkloadProfile p("half", std::move(points));
  const BatchScheduler sched(Machine{4, watts(10000.0), watts(10.0)});
  const BatchResult r = sched.schedule(
      {BatchJob{spec("a", 2), &p}, BatchJob{spec("b", 2), &p}},
      {NodeOutage{seconds(10.0), 2, seconds(10.0)},
       NodeOutage{seconds(10.0), 1, seconds(100.0)}});
  EXPECT_EQ(r.preemptions, 2);
  EXPECT_DOUBLE_EQ(r.placement("a").start.value(), 20.0);
  EXPECT_DOUBLE_EQ(r.placement("b").start.value(), 50.0);
  EXPECT_DOUBLE_EQ(r.makespan.value(), 80.0);
  expect_cap_invariant(r, 10000.0);
  expect_timeline_integral_matches(r);
}

TEST(BatchScheduler, RepairShrinksTheBudgetAndForcesADownshift) {
  const WorkloadProfile p = toy_profile("J");
  // During the outage two nodes are gone entirely, so the 340 W cap lets
  // "a" run fast (320 W total).  The repair brings back 100 W of parked
  // idle draw: the budget shrinks and "a" must downshift — draw lands
  // exactly on the cap, never over it.
  const std::vector<BatchJob> jobs = {BatchJob{spec("a", 1), &p},
                                      BatchJob{spec("b", 1), &p}};
  const BatchScheduler sched(Machine{4, watts(340.0), watts(50.0)});
  const BatchResult r = sched.schedule(
      jobs, {NodeOutage{seconds(0.0), 2, seconds(10.0)}});
  EXPECT_EQ(r.preemptions, 0);
  const BatchPlacement& a = r.placement("a");
  EXPECT_EQ(a.start_gear_label, 1);
  EXPECT_EQ(a.final_gear_label, 2);
  EXPECT_EQ(a.gear_changes, 1);
  EXPECT_DOUBLE_EQ(a.end.value(), 145.0);  // 10 + 0.9 * 150.
  EXPECT_DOUBLE_EQ(r.peak_power.value(), 340.0);  // Exactly at the cap.
  EXPECT_NEAR(r.min_headroom.value(), 0.0, 1e-9);
  expect_cap_invariant(r, 340.0);
  expect_timeline_integral_matches(r);
}

TEST(BatchScheduler, RepairCanEvictWhenEvenTheFloorNoLongerFits) {
  const WorkloadProfile p = toy_profile("J");
  // Cap 300 W: both jobs fit at the slow gear (240 W) while two nodes
  // are down.  The repair's returning idle draw (now 2 parked nodes at
  // 50 W) leaves a 200 W budget — below the 240 W floor — so the
  // younger job is evicted; its node parks too (3 x 50 W, 150 W
  // budget), leaving the survivor at the slow gear but under the cap.
  const std::vector<BatchJob> jobs = {BatchJob{spec("a", 1), &p},
                                      BatchJob{spec("b", 1), &p}};
  const BatchScheduler sched(Machine{4, watts(300.0), watts(50.0)});
  const BatchResult r = sched.schedule(
      jobs, {NodeOutage{seconds(0.0), 2, seconds(10.0)}});
  EXPECT_EQ(r.preemptions, 1);
  EXPECT_DOUBLE_EQ(r.wasted_energy.value(), 120.0 * 10.0);
  const BatchPlacement& a = r.placement("a");
  EXPECT_EQ(a.final_gear_label, 2);
  EXPECT_NEAR(a.end.value(), 150.0, 1e-9);
  // "b" re-runs after "a" completes, still at the slow gear.
  EXPECT_NEAR(r.placement("b").start.value(), a.end.value(), 1e-12);
  EXPECT_EQ(r.placement("b").final_gear_label, 2);
  EXPECT_NEAR(r.makespan.value(), 300.0, 1e-9);
  expect_cap_invariant(r, 300.0);
  expect_timeline_integral_matches(r);
}

TEST(BatchScheduler, MoldableJobRunsNarrowerThanTotalTasks) {
  const WorkloadProfile p = toy_profile("J");
  // total_tasks = 4, but the 4-node floor (480 W slow) busts the 460 W
  // cap; the 2-node shape fits and the arbiter grants it the fast gear.
  const BatchScheduler sched(Machine{4, watts(460.0), watts(10.0)});
  const BatchResult r = sched.schedule({BatchJob{spec("a", 4), &p}});
  const BatchPlacement& a = r.placement("a");
  EXPECT_EQ(a.nodes, 2);
  EXPECT_EQ(a.final_gear_label, 1);
  EXPECT_DOUBLE_EQ(r.makespan.value(), 50.0);
  expect_cap_invariant(r, 460.0);
}

TEST(BatchScheduler, ArrivalsAndGreedyBackfill) {
  const WorkloadProfile wide(
      "wide", {ConfigPoint{4, 0, 1, seconds(25.0), joules(20000.0)}});
  const WorkloadProfile narrow(
      "narrow", {ConfigPoint{1, 0, 1, seconds(10.0), joules(2000.0)}});
  const std::vector<BatchJob> jobs = {BatchJob{spec("w1", 4), &wide},
                                      BatchJob{spec("w2", 4), &wide},
                                      BatchJob{spec("n", 1), &narrow}};
  const Machine five{5, watts(1e6), watts(10.0)};
  const BatchResult fifo =
      BatchScheduler(five, BatchOptions{QueueDiscipline::kFifo, true})
          .schedule(jobs);
  const BatchResult greedy =
      BatchScheduler(five, BatchOptions{QueueDiscipline::kGreedy, true})
          .schedule(jobs);
  EXPECT_GT(fifo.placement("n").start.value(), 0.0);
  EXPECT_DOUBLE_EQ(greedy.placement("n").start.value(), 0.0);
  EXPECT_LE(greedy.makespan.value(), fifo.makespan.value());

  // A late arrival waits for its submission time, not for the queue.
  const WorkloadProfile p = toy_profile("J");
  const BatchScheduler sched(Machine{4, watts(1e6), watts(10.0)});
  const BatchResult late = sched.schedule(
      {BatchJob{spec("early", 1), &p},
       BatchJob{spec("late", 1, EnergyPolicyTag::kNone, 40.0), &p}});
  EXPECT_DOUBLE_EQ(late.placement("early").start.value(), 0.0);
  EXPECT_DOUBLE_EQ(late.placement("late").start.value(), 40.0);
}

TEST(BatchScheduler, OutageBeforeTheFirstPlacementParksAndWaits) {
  const WorkloadProfile wide(
      "wide", {ConfigPoint{4, 0, 1, seconds(25.0), joules(20000.0)}});
  // 3 of 4 nodes are down from t=0: the 4-node job cannot start until
  // the repair at t=50; the lone surviving node parks (and is sampled).
  const BatchScheduler sched(Machine{4, watts(10000.0), watts(10.0)});
  const BatchResult r =
      sched.schedule({BatchJob{spec("a", 4), &wide}},
                     {NodeOutage{seconds(0.0), 3, seconds(50.0)}});
  EXPECT_EQ(r.preemptions, 0);
  ASSERT_FALSE(r.power_timeline.empty());
  EXPECT_DOUBLE_EQ(r.power_timeline.front().at.value(), 0.0);
  EXPECT_DOUBLE_EQ(r.power_timeline.front().draw.value(), 10.0);
  EXPECT_DOUBLE_EQ(r.placement("a").start.value(), 50.0);
  EXPECT_DOUBLE_EQ(r.makespan.value(), 75.0);
  expect_timeline_integral_matches(r);
}

TEST(BatchScheduler, RepairAfterTheQueueDrainsDoesNotExtendTheSchedule) {
  const WorkloadProfile p = toy_profile("J");
  // The outage only takes parked nodes (no kill); its repair lands long
  // after the last completion and must not stretch the makespan.
  const BatchScheduler sched(Machine{4, watts(1e6), watts(10.0)});
  const BatchResult r =
      sched.schedule({BatchJob{spec("a", 1), &p}},
                     {NodeOutage{seconds(10.0), 2, seconds(200.0)}});
  EXPECT_EQ(r.preemptions, 0);
  EXPECT_DOUBLE_EQ(r.makespan.value(), 100.0);
  EXPECT_DOUBLE_EQ(r.power_timeline.back().at.value(), 100.0);
  // The outage is still visible mid-run: two fewer parked nodes.
  bool saw_outage_sample = false;
  for (const auto& s : r.power_timeline) {
    if (s.at.value() == 10.0) {
      EXPECT_DOUBLE_EQ(s.draw.value(), 200.0 + 1 * 10.0);
      saw_outage_sample = true;
    }
  }
  EXPECT_TRUE(saw_outage_sample);
  expect_timeline_integral_matches(r);
}

TEST(BatchScheduler, EdgeCaseContracts) {
  const WorkloadProfile p = toy_profile("J");
  // Cap below the machine's own parked draw: rejected at construction.
  EXPECT_THROW(BatchScheduler(Machine{10, watts(100.0), watts(50.0)}),
               ContractError);
  // A job no configuration can fit under the cap: rejected up front.
  const BatchScheduler tight(Machine{4, watts(125.0), watts(10.0)});
  EXPECT_THROW((void)tight.schedule({BatchJob{spec("a", 4), &p}}),
               ContractError);
  // A wall limit below even the fastest configuration: certain death,
  // rejected up front too.
  const BatchScheduler roomy(Machine{4, watts(10000.0), watts(10.0)});
  EXPECT_THROW(
      (void)roomy.schedule({BatchJob{
          spec("a", 4, EnergyPolicyTag::kNone, 0.0, 20.0), &p}}),
      ContractError);
  // An unrepaired outage that strands the queue forever.
  EXPECT_THROW(
      (void)roomy.schedule({BatchJob{spec("a", 4), &p}},
                           {NodeOutage{seconds(10.0), 4}}),
      ContractError);
  // Duplicate ids and missing profiles are submission bugs.
  EXPECT_THROW((void)roomy.schedule(
                   {BatchJob{spec("a", 1), &p}, BatchJob{spec("a", 1), &p}}),
               ContractError);
  EXPECT_THROW((void)roomy.schedule({BatchJob{spec("a", 1), nullptr}}),
               ContractError);
  // placement() on a job that never completed.
  const BatchResult ok = roomy.schedule({BatchJob{spec("a", 1), &p}});
  EXPECT_THROW((void)ok.placement("ghost"), ContractError);
}

TEST(BatchScheduler, RerunsAreByteIdentical) {
  const WorkloadProfile cg = toy_profile("CG");
  const WorkloadProfile ep = toy_profile("EP", 80.0, 150.0);
  const std::vector<BatchJob> jobs = {
      BatchJob{spec("a", 4, EnergyPolicyTag::kMinimizeTimeToSolution), &cg},
      BatchJob{spec("b", 2, EnergyPolicyTag::kMinimizeEnergyToSolution), &ep},
      BatchJob{spec("c", 1, EnergyPolicyTag::kNone, 30.0), &cg}};
  const std::vector<NodeOutage> outages = {
      NodeOutage{seconds(40.0), 1, seconds(30.0)}};
  const BatchScheduler sched(Machine{4, watts(700.0), watts(10.0)});
  const BatchResult r1 = sched.schedule(jobs, outages);
  const BatchResult r2 = sched.schedule(jobs, outages);
  EXPECT_EQ(r1.makespan.value(), r2.makespan.value());
  EXPECT_EQ(r1.job_energy.value(), r2.job_energy.value());
  EXPECT_EQ(r1.idle_energy.value(), r2.idle_energy.value());
  EXPECT_EQ(r1.wasted_energy.value(), r2.wasted_energy.value());
  EXPECT_EQ(r1.peak_power.value(), r2.peak_power.value());
  EXPECT_EQ(r1.min_headroom.value(), r2.min_headroom.value());
  EXPECT_EQ(r1.redistributed_watts.value(), r2.redistributed_watts.value());
  EXPECT_EQ(r1.arbitrations, r2.arbitrations);
  ASSERT_EQ(r1.placements.size(), r2.placements.size());
  for (std::size_t i = 0; i < r1.placements.size(); ++i) {
    EXPECT_EQ(r1.placements[i].job_id, r2.placements[i].job_id);
    EXPECT_EQ(r1.placements[i].start.value(), r2.placements[i].start.value());
    EXPECT_EQ(r1.placements[i].end.value(), r2.placements[i].end.value());
    EXPECT_EQ(r1.placements[i].final_gear_label,
              r2.placements[i].final_gear_label);
    EXPECT_EQ(r1.placements[i].energy.value(),
              r2.placements[i].energy.value());
  }
  ASSERT_EQ(r1.power_timeline.size(), r2.power_timeline.size());
  for (std::size_t i = 0; i < r1.power_timeline.size(); ++i) {
    EXPECT_EQ(r1.power_timeline[i].at.value(),
              r2.power_timeline[i].at.value());
    EXPECT_EQ(r1.power_timeline[i].draw.value(),
              r2.power_timeline[i].draw.value());
  }
  expect_cap_invariant(r1, 700.0);
  expect_timeline_integral_matches(r1);
}

TEST(BatchScheduler, MetricsMatchTheResult) {
  const WorkloadProfile p = toy_profile("J");
  obs::MetricsRegistry reg;
  const BatchScheduler sched(Machine{2, watts(250.0), watts(0.0)});
  const BatchResult r = sched.schedule(
      {BatchJob{spec("a", 1), &p}, BatchJob{spec("b", 1), &p}},
      {NodeOutage{seconds(30.0), 1, seconds(1000.0)}}, &reg);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.metrics.at("sched.arbitrations").count, r.arbitrations);
  EXPECT_EQ(snap.metrics.at("sched.preemptions").count,
            static_cast<std::uint64_t>(r.preemptions));
  EXPECT_DOUBLE_EQ(snap.metrics.at("sched.cap.headroom").value,
                   r.min_headroom.value());
  EXPECT_DOUBLE_EQ(snap.metrics.at("sched.redistributed_watts").value,
                   r.redistributed_watts.value());
  EXPECT_GT(r.redistributed_watts.value(), 0.0);
}

TEST(BatchScheduler, EndToEndWithMeasuredProfilesUnderOutage) {
  // Full pipeline: cached profile measurement, a mixed-tag queue, an
  // outage mid-run, and every invariant the scheduler promises.
  exec::ResultCache cache;
  exec::SweepOptions opts;
  opts.cache = &cache;
  const exec::SweepRunner runner(cluster::athlon_cluster(), opts);
  const auto cg = workloads::make_workload("CG");
  const auto ep = workloads::make_workload("EP");
  const WorkloadProfile cg_prof = WorkloadProfile::measure(runner, *cg, 8);
  const WorkloadProfile ep_prof = WorkloadProfile::measure(runner, *ep, 8);
  const Machine rack{10, watts(1200.0), watts(85.0)};
  const BatchScheduler sched(rack);
  const BatchResult r = sched.schedule(
      {BatchJob{spec("cg", 8, EnergyPolicyTag::kMinimizeTimeToSolution),
                &cg_prof},
       BatchJob{spec("ep", 8, EnergyPolicyTag::kMinimizeEnergyToSolution),
                &ep_prof},
       BatchJob{spec("cg2", 4), &cg_prof}},
      {NodeOutage{seconds(1.0), 2, seconds(5.0)}});
  EXPECT_EQ(r.placements.size(), 3u);
  EXPECT_GT(r.makespan.value(), 0.0);
  expect_cap_invariant(r, 1200.0);
  expect_timeline_integral_matches(r);
}

}  // namespace
}  // namespace gearsim::sched
