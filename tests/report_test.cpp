// Tests for the SVG report module: tick generation, document structure,
// escaping, figure building, and file output.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "report/figures.hpp"
#include "report/svg_plot.hpp"

namespace gearsim::report {
namespace {

TEST(NiceTicks, RoundValuesCoverTheRange) {
  const auto ticks = nice_ticks(0.0, 10.0);
  ASSERT_GE(ticks.size(), 4u);
  ASSERT_LE(ticks.size(), 9u);
  EXPECT_GE(ticks.front(), 0.0);
  EXPECT_LE(ticks.back(), 10.0 + 1e-9);
  for (std::size_t i = 1; i < ticks.size(); ++i) {
    EXPECT_NEAR(ticks[i] - ticks[i - 1], ticks[1] - ticks[0], 1e-9);
  }
}

TEST(NiceTicks, HandlesOffsetsAndSmallRanges) {
  const auto ticks = nice_ticks(97.3, 151.8);
  EXPECT_GE(ticks.front(), 97.3);
  EXPECT_LE(ticks.back(), 151.8 + 1e-6);
  const auto tiny = nice_ticks(0.001, 0.009);
  EXPECT_GE(tiny.size(), 3u);
  EXPECT_THROW(nice_ticks(5.0, 5.0), ContractError);
}

SvgSeries simple_series() {
  SvgSeries s;
  s.label = "4 nodes";
  s.points = {{100.0, 15.0}, {105.0, 14.0}, {112.0, 13.5}};
  s.point_labels = {"g1", "g2", "g3"};
  return s;
}

TEST(SvgPlot, RendersWellFormedDocument) {
  SvgPlot plot("Figure X", "time [s]", "energy [kJ]");
  plot.add_series(simple_series());
  const std::string svg = plot.render();
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("Figure X"), std::string::npos);
  EXPECT_NE(svg.find("time [s]"), std::string::npos);
  EXPECT_NE(svg.find("energy [kJ]"), std::string::npos);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
  // One marker per point plus one legend dot.
  std::size_t circles = 0;
  for (std::size_t pos = svg.find("<circle"); pos != std::string::npos;
       pos = svg.find("<circle", pos + 1)) {
    ++circles;
  }
  EXPECT_EQ(circles, 4u);
  EXPECT_NE(svg.find(">g2<"), std::string::npos);  // Point annotation.
}

TEST(SvgPlot, EscapesMarkup) {
  SvgPlot plot("a < b & c", "x", "y");
  SvgSeries s;
  s.label = "<series>";
  s.points = {{0.0, 0.0}, {1.0, 1.0}};
  plot.add_series(std::move(s));
  const std::string svg = plot.render();
  EXPECT_NE(svg.find("a &lt; b &amp; c"), std::string::npos);
  EXPECT_NE(svg.find("&lt;series&gt;"), std::string::npos);
  EXPECT_EQ(svg.find("<series>"), std::string::npos);
}

TEST(SvgPlot, MultipleSeriesGetDistinctColors) {
  SvgPlot plot("t", "x", "y");
  for (int i = 0; i < 3; ++i) {
    SvgSeries s;
    s.label = "s" + std::to_string(i);
    s.points = {{0.0, static_cast<double>(i)}, {1.0, i + 1.0}};
    plot.add_series(std::move(s));
  }
  const std::string svg = plot.render();
  EXPECT_NE(svg.find("#1f77b4"), std::string::npos);
  EXPECT_NE(svg.find("#d62728"), std::string::npos);
  EXPECT_NE(svg.find("#2ca02c"), std::string::npos);
}

TEST(SvgPlot, RejectsBadInput) {
  SvgPlot plot("t", "x", "y");
  EXPECT_THROW(plot.render(), ContractError);  // No series.
  SvgSeries empty;
  empty.label = "e";
  EXPECT_THROW(plot.add_series(empty), ContractError);
  SvgSeries mismatched = simple_series();
  mismatched.point_labels.pop_back();
  EXPECT_THROW(plot.add_series(mismatched), ContractError);
}

TEST(SvgPlot, WritesAFile) {
  const std::string path = "/tmp/gearsim_report_test.svg";
  SvgPlot plot("t", "x", "y");
  plot.add_series(simple_series());
  plot.write(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first.rfind("<svg", 0), 0u);
  std::remove(path.c_str());
}

TEST(Figures, EnergyTimeFigureFromCurves) {
  model::Curve c4;
  c4.nodes = 4;
  c4.points = {{1, seconds(100), kilojoules(15)},
               {2, seconds(104), kilojoules(14)}};
  model::Curve c8;
  c8.nodes = 8;
  c8.points = {{1, seconds(60), kilojoules(17)},
               {2, seconds(63), kilojoules(16)}};
  const SvgPlot plot = energy_time_figure("Figure 2: LU", {c4, c8});
  EXPECT_EQ(plot.series_count(), 2u);
  const std::string svg = plot.render();
  EXPECT_NE(svg.find("4 nodes"), std::string::npos);
  EXPECT_NE(svg.find("8 nodes"), std::string::npos);
  EXPECT_NE(svg.find(">g1<"), std::string::npos);
}

TEST(Figures, SingleNodeLabel) {
  model::Curve c1;
  c1.nodes = 1;
  c1.points = {{1, seconds(100), kilojoules(15)}};
  const std::string svg = energy_time_figure("f", {c1}).render();
  EXPECT_NE(svg.find("1 node<"), std::string::npos);
}

}  // namespace
}  // namespace gearsim::report
