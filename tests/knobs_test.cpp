// Property tests for the workload calibration knobs: every public knob
// must move the observable it claims to control, in the right direction,
// without breaking the run-level invariants.
#include <gtest/gtest.h>

#include "cluster/dvfs.hpp"
#include "cluster/experiment.hpp"
#include "workloads/jacobi.hpp"
#include "workloads/nas.hpp"
#include "workloads/registry.hpp"
#include "workloads/synthetic.hpp"

namespace gearsim::workloads {
namespace {

cluster::ExperimentRunner athlon() {
  return cluster::ExperimentRunner(cluster::athlon_cluster());
}

TEST(Knobs, CgPairBytesScalesIdleTime) {
  auto runner = athlon();
  NasCg light;
  light.pair_bytes = kilobytes(40);
  NasCg heavy;
  heavy.pair_bytes = kilobytes(240);
  const Seconds idle_light =
      runner.run(light, 8, 0).breakdown.idle_derived;
  const Seconds idle_heavy =
      runner.run(heavy, 8, 0).breakdown.idle_derived;
  EXPECT_GT(idle_heavy / idle_light, 3.0);
}

TEST(Knobs, LuSweepBytesScalesCommConstant) {
  auto runner = athlon();
  NasLu thin;
  thin.sweep_bytes = kilobytes(60);
  NasLu thick;
  thick.sweep_bytes = kilobytes(240);
  const Seconds i_thin = runner.run(thin, 4, 0).breakdown.idle_derived;
  const Seconds i_thick = runner.run(thick, 4, 0).breakdown.idle_derived;
  EXPECT_GT(i_thick / i_thin, 2.0);
}

TEST(Knobs, MgLevelsScaleHaloTraffic) {
  auto runner = athlon();
  NasMg shallow;
  shallow.levels = 4;
  NasMg deep;
  deep.levels = 8;
  const auto shallow_run = runner.run(shallow, 4, 0);
  const auto deep_run = runner.run(deep, 4, 0);
  EXPECT_GT(deep_run.messages, shallow_run.messages);
  EXPECT_GT(deep_run.net_bytes, shallow_run.net_bytes);
}

TEST(Knobs, SpSyncBytesControlTheIdleShare) {
  auto runner = athlon();
  NasSp quiet;
  quiet.sync_bytes = kilobytes(50);
  NasSp loud;
  loud.sync_bytes = kilobytes(500);
  const auto quiet_run = runner.run(quiet, 9, 0);
  const auto loud_run = runner.run(loud, 9, 0);
  EXPECT_GT(loud_run.breakdown.idle_derived / loud_run.wall,
            quiet_run.breakdown.idle_derived / quiet_run.wall);
}

TEST(Knobs, JacobiHaloBytesDegradeSpeedup) {
  auto runner = athlon();
  Jacobi::Params p;
  p.halo_bytes = kilobytes(16);
  const Jacobi small(p);
  p.halo_bytes = kilobytes(256);
  const Jacobi big(p);
  const double speedup_small =
      runner.run(small, 1, 0).wall / runner.run(small, 8, 0).wall;
  const double speedup_big =
      runner.run(big, 1, 0).wall / runner.run(big, 8, 0).wall;
  EXPECT_GT(speedup_small, speedup_big + 0.5);
}

TEST(Knobs, SyntheticUpmControlsGearSensitivity) {
  auto runner = athlon();
  Synthetic::Params p;
  p.upm = 2.5;
  const Synthetic memory_bound(p);
  p.upm = 200.0;
  const Synthetic compute_bound(p);
  const double slow_mb = runner.run(memory_bound, 1, 5).wall /
                         runner.run(memory_bound, 1, 0).wall;
  const double slow_cb = runner.run(compute_bound, 1, 5).wall /
                         runner.run(compute_bound, 1, 0).wall;
  EXPECT_LT(slow_mb, 1.2);
  EXPECT_GT(slow_cb, 2.0);
}

TEST(Knobs, SerialFractionFlattensScaling) {
  // Same structure, doubled serial fraction: worse speedup.
  auto runner = athlon();
  Jacobi::Params p;
  p.serial_fraction = 0.005;
  const Jacobi parallel_ish(p);
  p.serial_fraction = 0.15;
  const Jacobi serial_ish(p);
  const double s1 = runner.run(parallel_ish, 1, 0).wall /
                    runner.run(parallel_ish, 8, 0).wall;
  const double s2 = runner.run(serial_ish, 1, 0).wall /
                    runner.run(serial_ish, 8, 0).wall;
  EXPECT_GT(s1, s2 + 1.0);
}

TEST(Knobs, IterationCountPreservesTotals) {
  // Splitting the same work across more iterations must not change the
  // 1-node runtime (no comm) beyond rounding.
  auto runner = athlon();
  Jacobi::Params p;
  p.iterations = 100;
  const Jacobi coarse(p);
  p.iterations = 400;
  const Jacobi fine(p);
  const Seconds t_coarse = runner.run(coarse, 1, 0).wall;
  const Seconds t_fine = runner.run(fine, 1, 0).wall;
  EXPECT_NEAR(t_fine / t_coarse, 1.0, 1e-6);
}

TEST(Knobs, GearSwitchLatencyScalesPolicyOverhead) {
  cluster::ClusterConfig cheap_config = cluster::athlon_cluster();
  cheap_config.gear_switch_latency = microseconds(10.0);
  cluster::ClusterConfig pricey_config = cluster::athlon_cluster();
  pricey_config.gear_switch_latency = microseconds(1000.0);
  cluster::ExperimentRunner cheap(cheap_config);
  cluster::ExperimentRunner pricey(pricey_config);
  cluster::CommDownshift policy(0, 5);
  cluster::RunOptions options;
  options.policy = &policy;
  const auto lu = make_workload("LU");
  const Seconds t_cheap = cheap.run(*lu, 4, options).wall;
  const Seconds t_pricey = pricey.run(*lu, 4, options).wall;
  EXPECT_GT(t_pricey.value(), t_cheap.value());
}

TEST(Knobs, WeakScalingHoldsPerRankWorkConstant) {
  auto runner = athlon();
  Jacobi::Params p;
  p.weak_scaling = true;
  const Jacobi weak(p);
  const Seconds t1 = runner.run(weak, 1, 0).wall;
  const Seconds t8 = runner.run(weak, 8, 0).wall;
  // Per-rank work constant: wall time ~flat (halo + allreduce overheads).
  EXPECT_NEAR(t8 / t1, 1.0, 0.10);
}

TEST(Knobs, WeakScalingEnergyPerWorkStaysFlat) {
  auto runner = athlon();
  Jacobi::Params p;
  p.weak_scaling = true;
  const Jacobi weak(p);
  const Joules e1 = runner.run(weak, 1, 0).energy;
  const cluster::RunResult r8 = runner.run(weak, 8, 0);
  // 8 nodes perform 8x the work; energy per unit of work ~flat.
  EXPECT_NEAR(r8.energy.value() / 8.0 / e1.value(), 1.0, 0.10);
}

}  // namespace
}  // namespace gearsim::workloads
