// Tests for the observability layer: registry semantics (counters,
// gauges, histogram bucket edges, domain split), snapshot merge and JSON
// round trips, manifest round trips, the bench-regression comparator,
// and the two determinism contracts — metrics-disabled runs are
// bit-identical to uninstrumented ones, and sim-domain metrics are
// bit-identical across reruns and worker counts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/experiment.hpp"
#include "exec/result_io.hpp"
#include "exec/sweep_runner.hpp"
#include "obs/compare.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"
#include "workloads/jacobi.hpp"

namespace gearsim::obs {
namespace {

// ---- registry semantics -----------------------------------------------------

TEST(MetricsRegistryTest, CounterFindOrCreateAndAdd) {
  MetricsRegistry reg;
  reg.counter("a").add();
  reg.counter("a").add(3);
  EXPECT_EQ(reg.counter("a").value(), 4u);
  EXPECT_EQ(reg.counter("b").value(), 0u);
}

TEST(MetricsRegistryTest, GaugeKinds) {
  MetricsRegistry reg;
  Gauge& hi = reg.gauge("hi", Gauge::Kind::kMax);
  hi.set(2.0);
  hi.set(1.0);
  EXPECT_EQ(hi.value(), 2.0);
  Gauge& last = reg.gauge("last", Gauge::Kind::kLast);
  last.set(2.0);
  last.set(1.0);
  EXPECT_EQ(last.value(), 1.0);
}

TEST(MetricsRegistryTest, HistogramBucketEdgesAreUpperBoundsInclusive) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {1.0, 10.0});
  h.observe(0.5);   // <= 1.0 -> bucket 0
  h.observe(1.0);   // == edge -> bucket 0 (inclusive upper bound)
  h.observe(1.001); // -> bucket 1
  h.observe(10.0);  // == edge -> bucket 1
  h.observe(11.0);  // -> overflow
  ASSERT_EQ(h.buckets().size(), 3u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.001 + 10.0 + 11.0);
}

TEST(MetricsRegistryTest, KindAndShapeMismatchesThrow) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), ContractError);
  reg.histogram("h", {1.0, 2.0});
  EXPECT_THROW(reg.histogram("h", {1.0, 3.0}), ContractError);
}

TEST(MetricsRegistryTest, WallHandlesAreNullWhenProfilingOff) {
  MetricsRegistry off(false);
  EXPECT_EQ(off.wall_counter("w"), nullptr);
  EXPECT_EQ(off.wall_gauge("w"), nullptr);
  EXPECT_EQ(off.wall_histogram("w", {1.0}), nullptr);
  EXPECT_TRUE(off.snapshot().empty());

  MetricsRegistry on(true);
  ASSERT_NE(on.wall_counter("w"), nullptr);
  on.wall_counter("w")->add();
  const MetricsSnapshot snap = on.snapshot();
  ASSERT_EQ(snap.metrics.count("w"), 1u);
  EXPECT_EQ(snap.metrics.at("w").domain, Domain::kWall);
  // The sim-domain serialization must not leak wall metrics.
  EXPECT_EQ(snap.to_json(Domain::kSim), "{}");
}

// ---- snapshot merge and JSON ------------------------------------------------

TEST(MetricsSnapshotTest, MergeSemanticsPerKind) {
  MetricsRegistry a;
  a.counter("c").add(2);
  a.gauge("max", Gauge::Kind::kMax).set(5.0);
  a.gauge("last", Gauge::Kind::kLast).set(5.0);
  a.histogram("h", {1.0}).observe(0.5);

  MetricsRegistry b;
  b.counter("c").add(3);
  b.gauge("max", Gauge::Kind::kMax).set(3.0);
  b.gauge("last", Gauge::Kind::kLast).set(3.0);
  b.histogram("h", {1.0}).observe(2.0);

  MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.metrics.at("c").count, 5u);
  EXPECT_EQ(merged.metrics.at("max").value, 5.0);   // max wins
  EXPECT_EQ(merged.metrics.at("last").value, 3.0);  // latest wins
  EXPECT_EQ(merged.metrics.at("h").buckets, (std::vector<std::uint64_t>{1, 1}));
  EXPECT_EQ(merged.metrics.at("h").count, 2u);
}

TEST(MetricsSnapshotTest, MergeShapeMismatchThrows) {
  MetricsRegistry a;
  a.histogram("h", {1.0});
  MetricsRegistry b;
  b.histogram("h", {2.0});
  MetricsSnapshot snap = a.snapshot();
  EXPECT_THROW(snap.merge(b.snapshot()), ContractError);
}

TEST(MetricsSnapshotTest, JsonRoundTrip) {
  MetricsRegistry reg(true);
  reg.counter("events").add(42);
  reg.gauge("queue", Gauge::Kind::kMax).set(17.0);
  reg.histogram("rework", {0.1, 1.0}).observe(0.05);
  reg.wall_counter("wall.polls")->add(7);

  const MetricsSnapshot snap = reg.snapshot();
  const MetricsSnapshot back = MetricsSnapshot::from_json(snap.to_json());
  EXPECT_EQ(back.to_json(), snap.to_json());
  // Round trip preserves the domain split.
  EXPECT_EQ(back.to_json(Domain::kSim), snap.to_json(Domain::kSim));
  EXPECT_EQ(back.metrics.at("wall.polls").domain, Domain::kWall);
}

// ---- manifests --------------------------------------------------------------

TEST(ManifestTest, JsonRoundTrip) {
  RunManifest m;
  m.tool = "gearsim sweep";
  m.cache_key_format = 2;
  m.add_info("workload", "CG");
  m.add_info("nodes", "4");
  m.wall_seconds = 1.25;
  MetricsRegistry reg;
  reg.counter("cluster.runs").add(6);
  m.metrics = reg.snapshot();

  const RunManifest back = RunManifest::from_json(m.to_json());
  EXPECT_EQ(back.to_json(), m.to_json());
  EXPECT_EQ(back.tool, "gearsim sweep");
  EXPECT_EQ(back.cache_key_format, 2);
  EXPECT_EQ(back.metrics.metrics.at("cluster.runs").count, 6u);
  EXPECT_DOUBLE_EQ(back.wall_seconds, 1.25);
}

TEST(ManifestTest, DeterministicCoreExcludesWallClock) {
  RunManifest m;
  m.tool = "t";
  MetricsRegistry reg(true);
  reg.counter("sim.c").add();
  reg.wall_counter("wall.c")->add();
  m.metrics = reg.snapshot();
  m.wall_seconds = 3.0;

  const std::string core = m.deterministic_json();
  EXPECT_NE(core.find("sim.c"), std::string::npos);
  EXPECT_EQ(core.find("wall.c"), std::string::npos);
  EXPECT_EQ(core.find("wall_seconds"), std::string::npos);

  // Two runs that differ only in wall time share one fingerprint.
  RunManifest slower = m;
  slower.wall_seconds = 30.0;
  EXPECT_EQ(slower.deterministic_json(), core);
  EXPECT_NE(slower.to_json(), m.to_json());
}

TEST(ManifestTest, DuplicateInfoKeysRejected) {
  RunManifest m;
  m.tool = "t";
  m.add_info("k", "1");
  m.add_info("k", "2");
  EXPECT_THROW(m.to_json(), ContractError);
}

// ---- the regression comparator ----------------------------------------------

std::string result_doc(double wall_s, double energy_j) {
  return "{\"schema\":\"gearsim-bench/1\",\"name\":\"demo\",\"info\":{},"
         "\"metrics\":{\"time_s\":" + std::to_string(wall_s) +
         ",\"energy_j\":" + std::to_string(energy_j) +
         "},\"wall\":{\"seconds\":1.0,\"metrics\":{}}}";
}

TEST(CompareBenchTest, PassesWithinToleranceAndGatesRegressions) {
  const std::string baseline = baseline_from_result(result_doc(10.0, 5.0),
                                                    /*tol_rel=*/0.02);
  // Identical result: clean pass.
  EXPECT_TRUE(compare_bench(baseline, result_doc(10.0, 5.0)).ok());
  // Inside the 2% band: pass.
  EXPECT_TRUE(compare_bench(baseline, result_doc(10.1, 5.0)).ok());
  // The acceptance criterion: an injected 2x slowdown must gate.
  const CompareReport slow = compare_bench(baseline, result_doc(20.0, 5.0));
  EXPECT_FALSE(slow.ok());
  EXPECT_NE(render_report(slow).find("REGRESSION"), std::string::npos);
}

TEST(CompareBenchTest, MissingBaselinedMetricFails) {
  const std::string baseline = baseline_from_result(result_doc(10.0, 5.0),
                                                    0.02);
  const std::string missing =
      "{\"schema\":\"gearsim-bench/1\",\"name\":\"demo\",\"info\":{},"
      "\"metrics\":{\"time_s\":10.0},\"wall\":{\"seconds\":1.0,"
      "\"metrics\":{}}}";
  const CompareReport report = compare_bench(baseline, missing);
  EXPECT_FALSE(report.ok());
}

TEST(CompareBenchTest, ExtraResultMetricsAreUncheckedNotFailed) {
  const std::string baseline =
      "{\"schema\":\"gearsim-bench-baseline/1\",\"name\":\"demo\","
      "\"metrics\":{\"time_s\":{\"value\":10.0,\"tol_rel\":0.02}}}";
  const CompareReport report =
      compare_bench(baseline, result_doc(10.0, 5.0));
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(report.unchecked.size(), 1u);
  EXPECT_EQ(report.unchecked[0], "energy_j");
}

TEST(CompareBenchTest, DirectionalTolerances) {
  // direction max: improvement (smaller) passes, regression fails.
  const std::string max_baseline =
      "{\"schema\":\"gearsim-bench-baseline/1\",\"name\":\"demo\","
      "\"metrics\":{\"time_s\":{\"value\":10.0,\"tol_rel\":0.02,"
      "\"direction\":\"max\"}}}";
  EXPECT_TRUE(compare_bench(max_baseline, result_doc(5.0, 0.0)).ok());
  EXPECT_FALSE(compare_bench(max_baseline, result_doc(10.5, 0.0)).ok());
  // direction min: growth passes, shrinkage fails.
  const std::string min_baseline =
      "{\"schema\":\"gearsim-bench-baseline/1\",\"name\":\"demo\","
      "\"metrics\":{\"time_s\":{\"value\":10.0,\"tol_rel\":0.02,"
      "\"direction\":\"min\"}}}";
  EXPECT_TRUE(compare_bench(min_baseline, result_doc(20.0, 0.0)).ok());
  EXPECT_FALSE(compare_bench(min_baseline, result_doc(9.0, 0.0)).ok());
}

// ---- determinism contracts --------------------------------------------------

std::vector<exec::SweepPoint> jacobi_points(const workloads::Jacobi& jacobi,
                                            std::size_t gears) {
  std::vector<exec::SweepPoint> points;
  for (int nodes : {1, 2, 4}) {
    for (std::size_t g = 0; g < gears; ++g) {
      points.push_back(exec::SweepPoint{&jacobi, nodes, g, 0});
    }
  }
  return points;
}

TEST(ObsDeterminismTest, RunResultUnchangedByInstrumentation) {
  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  const workloads::Jacobi jacobi;

  // An attached registry is deliberately unsynchronized (see
  // obs/metrics.hpp), so instrumented runs always take the serial engine
  // — pin the baseline to the same mode so the comparison is
  // field-for-field even under an ambient GEARSIM_ENGINE_THREADS (the
  // serial-only event_order_hash would otherwise legitimately differ;
  // parallel-vs-serial physics is pinned by the cluster_test matrix).
  cluster::RunOptions serial;
  serial.engine_threads = 1;
  const cluster::RunResult plain = runner.run(jacobi, 4, serial);
  MetricsRegistry reg(true);
  cluster::RunOptions options;
  options.engine_threads = 1;
  options.metrics = &reg;
  const cluster::RunResult instrumented = runner.run(jacobi, 4, options);
  // The metrics side channel never perturbs the measurement record.
  EXPECT_EQ(exec::to_json(plain), exec::to_json(instrumented));
  // ...but it did observe the run.
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.metrics.at("cluster.runs").count, 1u);
  EXPECT_GT(snap.metrics.at("sim.engine.events_dispatched").count, 0u);
  EXPECT_GT(snap.metrics.at("net.bytes").count, 0u);
}

TEST(ObsDeterminismTest, SimMetricsBitIdenticalAcrossRerunsAndJobCounts) {
  const cluster::ClusterConfig config = cluster::athlon_cluster();
  const workloads::Jacobi jacobi;
  const auto points = jacobi_points(jacobi, config.gears.size());

  std::vector<std::string> fingerprints;
  for (const int jobs : {1, 1, 4}) {  // Rerun at jobs=1, then fan out.
    MetricsRegistry reg;
    exec::SweepOptions options;
    options.jobs = jobs;
    options.metrics = &reg;
    const exec::SweepRunner runner(config, options);
    (void)runner.run(points);
    fingerprints.push_back(reg.snapshot().to_json(Domain::kSim));
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
  EXPECT_EQ(fingerprints[0], fingerprints[2]);
  EXPECT_NE(fingerprints[0], "{}");
}

TEST(ObsDeterminismTest, SweepMetricsCountPointsAndCacheTraffic) {
  const cluster::ClusterConfig config = cluster::athlon_cluster();
  const workloads::Jacobi jacobi;
  const auto points = jacobi_points(jacobi, config.gears.size());

  exec::ResultCache cache;
  MetricsRegistry reg;
  exec::SweepOptions options;
  options.cache = &cache;
  options.metrics = &reg;
  const exec::SweepRunner runner(config, options);
  (void)runner.run(points);
  (void)runner.run(points);  // Second pass: all hits.

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.metrics.at("exec.sweep.points").count, 2 * points.size());
  EXPECT_EQ(snap.metrics.at("exec.cache.misses").count, points.size());
  EXPECT_EQ(snap.metrics.at("exec.cache.hits").count, points.size());
  // A cache hit never re-simulates, so sim volume matches ONE pass: the
  // engine's event count is whatever the misses produced.
  const std::uint64_t events =
      snap.metrics.at("sim.engine.events_dispatched").count;
  MetricsRegistry cold;
  exec::SweepOptions cold_options;
  cold_options.metrics = &cold;
  (void)exec::SweepRunner(config, cold_options).run(points);
  EXPECT_EQ(events,
            cold.snapshot().metrics.at("sim.engine.events_dispatched").count);
}

}  // namespace
}  // namespace gearsim::obs
