// Unit tests for src/util: units, statistics, RNG, tables, CSV quoting,
// the parallel-for worker pool (including clean drain and reusability
// after a mid-sweep throw), and the failpoint registry.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/csv.hpp"
#include "util/failpoint.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"
#include "util/statistics.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace gearsim {
namespace {

// --- units -------------------------------------------------------------------

TEST(Units, ArithmeticWithinAUnit) {
  const Seconds a = seconds(2.0);
  const Seconds b = seconds(0.5);
  EXPECT_DOUBLE_EQ((a + b).value(), 2.5);
  EXPECT_DOUBLE_EQ((a - b).value(), 1.5);
  EXPECT_DOUBLE_EQ((a * 3.0).value(), 6.0);
  EXPECT_DOUBLE_EQ((a / 4.0).value(), 0.5);
  EXPECT_DOUBLE_EQ(a / b, 4.0);
}

TEST(Units, PowerTimesTimeIsEnergy) {
  const Joules e = watts(100.0) * seconds(3.0);
  EXPECT_DOUBLE_EQ(e.value(), 300.0);
  EXPECT_DOUBLE_EQ((e / seconds(3.0)).value(), 100.0);
  EXPECT_DOUBLE_EQ((e / watts(100.0)).value(), 3.0);
}

TEST(Units, CyclesOverFrequency) {
  EXPECT_DOUBLE_EQ(cycles_over(2e9, gigahertz(2.0)).value(), 1.0);
}

TEST(Units, Comparisons) {
  EXPECT_LT(seconds(1.0), seconds(2.0));
  EXPECT_GE(watts(5.0), watts(5.0));
  EXPECT_TRUE(near(seconds(1.0), seconds(1.0 + 1e-12), 1e-9));
  EXPECT_FALSE(near(seconds(1.0), seconds(1.1), 1e-3));
}

TEST(Units, ConvenienceConstructors) {
  EXPECT_DOUBLE_EQ(milliseconds(1.5).value(), 1.5e-3);
  EXPECT_DOUBLE_EQ(microseconds(2.0).value(), 2e-6);
  EXPECT_DOUBLE_EQ(nanoseconds(3.0).value(), 3e-9);
  EXPECT_DOUBLE_EQ(megahertz(1800).value(), 1.8e9);
  EXPECT_EQ(kilobytes(2), Bytes{2048});
  EXPECT_EQ(megabytes(1), Bytes{1048576});
}

// --- RunningStats -------------------------------------------------------------

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, EmptyThrows) {
  RunningStats s;
  EXPECT_THROW((void)s.mean(), ContractError);
  EXPECT_THROW((void)s.min(), ContractError);
}

// --- linear fits ---------------------------------------------------------------

TEST(FitLinear, ExactLine) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {3, 5, 7, 9};  // y = 1 + 2x
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.intercept, 1.0, 1e-9);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(f.at(10.0), 21.0, 1e-9);
}

TEST(FitLinear, NoisyLineHasHighR2) {
  const std::vector<double> x = {1, 2, 3, 4, 5, 6};
  const std::vector<double> y = {2.1, 3.9, 6.2, 7.8, 10.1, 11.9};
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.slope, 2.0, 0.1);
  EXPECT_GT(f.r_squared, 0.99);
}

TEST(FitLinear, StandardErrors) {
  // y = 2 + 3x with unit-ish residuals at x = 0..4.
  const std::vector<double> x = {0, 1, 2, 3, 4};
  const std::vector<double> y = {2.1, 4.8, 8.2, 10.9, 14.1};
  const LinearFit f = fit_linear(x, y);
  // Analytic OLS: sigma^2 = RSS/(n-2); Sxx = 10.
  const double sigma2 = f.rss / 3.0;
  EXPECT_NEAR(f.stderr_slope, std::sqrt(sigma2 / 10.0), 1e-12);
  EXPECT_NEAR(f.stderr_intercept,
              std::sqrt(sigma2 * (1.0 / 5.0 + 4.0 / 10.0)), 1e-12);
  EXPECT_GT(f.prediction_stderr(10.0), f.prediction_stderr(1.0));
}

TEST(FitLinear, PerfectFitHasZeroStandardErrors) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {3, 5, 7, 9};
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.stderr_slope, 0.0, 1e-9);
  EXPECT_NEAR(f.stderr_intercept, 0.0, 1e-9);
}

TEST(FitConstant, StandardErrorIsSemOfMean) {
  const std::vector<double> y = {4.0, 6.0, 5.0, 5.0};
  const LinearFit f = fit_constant(y);
  // SEM = stddev / sqrt(n) with stddev^2 = RSS/(n-1).
  EXPECT_NEAR(f.stderr_intercept, std::sqrt((f.rss / 3.0) / 4.0), 1e-12);
}

TEST(FitLinear, RejectsTooFewPoints) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW(fit_linear(one, one), ContractError);
}

TEST(FitConstant, MeanAndResiduals) {
  const std::vector<double> y = {4.0, 6.0};
  const LinearFit f = fit_constant(y);
  EXPECT_DOUBLE_EQ(f.intercept, 5.0);
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
  EXPECT_NEAR(f.rss, 2.0, 1e-12);
}

// --- shape classification -------------------------------------------------------

TEST(ShapeFit, BasisValues) {
  EXPECT_DOUBLE_EQ(shape_basis(ScalingShape::kConstant, 7.0), 0.0);
  EXPECT_DOUBLE_EQ(shape_basis(ScalingShape::kLogarithmic, std::exp(1.0)), 1.0);
  EXPECT_DOUBLE_EQ(shape_basis(ScalingShape::kLinear, 7.0), 7.0);
  EXPECT_DOUBLE_EQ(shape_basis(ScalingShape::kQuadratic, 3.0), 9.0);
}

TEST(ClassifyShape, PicksQuadratic) {
  const std::vector<double> x = {2, 4, 8, 16};
  std::vector<double> y;
  for (double xi : x) y.push_back(1.0 + 0.5 * xi * xi);
  const auto fits = classify_shape(x, y);
  EXPECT_EQ(fits.front().shape, ScalingShape::kQuadratic);
  EXPECT_NEAR(fits.front().a, 1.0, 1e-6);
  EXPECT_NEAR(fits.front().b, 0.5, 1e-9);
}

TEST(ClassifyShape, PicksLogarithmic) {
  const std::vector<double> x = {2, 4, 8, 16, 32};
  std::vector<double> y;
  for (double xi : x) y.push_back(3.0 + 2.0 * std::log(xi));
  const auto fits = classify_shape(x, y);
  EXPECT_EQ(fits.front().shape, ScalingShape::kLogarithmic);
}

TEST(ClassifyShape, PicksLinear) {
  const std::vector<double> x = {2, 4, 8, 16};
  std::vector<double> y;
  for (double xi : x) y.push_back(1.0 + 4.0 * xi);
  const auto fits = classify_shape(x, y);
  EXPECT_EQ(fits.front().shape, ScalingShape::kLinear);
}

TEST(ClassifyShape, ParsimonyPrefersConstantOnFlatData) {
  const std::vector<double> x = {2, 4, 8, 16};
  const std::vector<double> y = {5.01, 4.99, 5.02, 4.98};
  const auto fits = classify_shape(x, y);
  EXPECT_EQ(fits.front().shape, ScalingShape::kConstant);
  EXPECT_NEAR(fits.front().a, 5.0, 0.01);
}

TEST(ClassifyShape, ReturnsAllFourRanked) {
  const std::vector<double> x = {2, 4, 8};
  const std::vector<double> y = {1, 2, 3};
  const auto fits = classify_shape(x, y);
  EXPECT_EQ(fits.size(), 4u);
  for (std::size_t i = 1; i < fits.size(); ++i) {
    if (fits.front().shape == ScalingShape::kConstant) continue;
    EXPECT_LE(fits[i - 1].rss, fits[i].rss + 1e-12);
  }
}

TEST(ClassifyShape, NeedsThreePoints) {
  const std::vector<double> x = {2, 4};
  const std::vector<double> y = {1, 2};
  EXPECT_THROW(classify_shape(x, y), ContractError);
}

// --- RNG ------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    s.add(u);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, BelowIsUnbiasedAndInRange) {
  Rng r(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[r.below(10)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 350);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.08);
  EXPECT_NEAR(s.stddev(), 2.0, 0.08);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng base(42);
  Rng a = base.fork(0);
  Rng b = base.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkOfForkStreamsStayDistinct) {
  // The sweep executor derives per-point streams as fork(fork(...)): a
  // two-level derivation must not alias a one-level one or a sibling.
  Rng base(42);
  Rng aa = base.fork(0).fork(0);
  Rng ab = base.fork(0).fork(1);
  Rng ba = base.fork(1).fork(0);
  Rng a = base.fork(0);
  const std::uint64_t first[] = {aa(), ab(), ba(), a()};
  std::set<std::uint64_t> distinct(std::begin(first), std::end(first));
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(Rng, ForkStreamsDoNotCollideAcrossAWideRange) {
  // First draw of 4096 sibling forks: all distinct (a collision would
  // make two sweep points share randomness).
  Rng base(7);
  std::set<std::uint64_t> seen;
  for (std::uint64_t s = 0; s < 4096; ++s) {
    seen.insert(base.fork(s)());
  }
  EXPECT_EQ(seen.size(), 4096u);
}

// --- tables ---------------------------------------------------------------------

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1.00"});
  t.add_row({"b", "20.50"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  // Numeric cells right-align: "20.50" ends right before " |".
  EXPECT_NE(s.find(" 20.50 |"), std::string::npos);
}

TEST(TextTable, CsvEscaping) {
  TextTable t({"a", "b"});
  t.add_row({"x,y", "plain"});
  t.add_row({"with \"quote\"", "z"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"with \"\"quote\"\"\""), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), ContractError);
}

TEST(Formatting, FixedAndPercent) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.095), "+9.5%");
  EXPECT_EQ(fmt_percent(-0.2), "-20.0%");
}

// --- CSV quoting -------------------------------------------------------------

TEST(Csv, PlainFieldsPassThroughUnquoted) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("3.14"), "3.14");
}

TEST(Csv, SpecialCharactersForceQuoting) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape("cr\rhere"), "\"cr\rhere\"");
}

TEST(Csv, ParseInvertsEscape) {
  const std::vector<std::string> fields = {"plain", "a,b", "say \"hi\"",
                                           "multi\nline", ""};
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) line += ',';
    line += csv_escape(fields[i]);
  }
  EXPECT_EQ(parse_csv_line(line), fields);
}

TEST(Csv, ParseRejectsUnterminatedQuote) {
  EXPECT_THROW((void)parse_csv_line("\"open"), ContractError);
}

// --- parallel_for_ordered ----------------------------------------------------

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for_ordered(8, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, SerialFallbackForOneJob) {
  // jobs<=1 must run inline, in order, on the calling thread.
  std::vector<std::size_t> order;
  parallel_for_ordered(1, 5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Parallel, ZeroIterationsIsANoOp) {
  parallel_for_ordered(4, 0, [](std::size_t) { FAIL(); });
}

TEST(Parallel, LowestIndexExceptionWins) {
  // When several indices throw, the caller sees the lowest one —
  // deterministic regardless of which worker hit its error first.
  try {
    parallel_for_ordered(8, 64, [](std::size_t i) {
      if (i % 2 == 1) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "1");
  }
}

TEST(Parallel, ResolveJobsContract) {
  EXPECT_EQ(resolve_jobs(3), 3);
  EXPECT_GE(resolve_jobs(-1), 1);  // Hardware concurrency, at least 1.
  EXPECT_GE(resolve_jobs(0), 1);   // Env default (serial unless overridden).
}

TEST(Parallel, DrainsCleanlyAfterThrow) {
  // On a mid-sweep throw every worker is joined before the rethrow: no
  // detached thread may keep claiming indices (or touching caller state)
  // after parallel_for_ordered returns.  A fail-fast stop also means most
  // not-yet-claimed indices are skipped, not burned through.
  std::atomic<std::size_t> executed{0};
  try {
    parallel_for_ordered(4, 1000, [&](std::size_t i) {
      if (i == 5) throw std::runtime_error("boom");
      executed.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  const std::size_t at_return = executed.load();
  EXPECT_LT(at_return, 1000u);  // Fail-fast: the tail never ran.
  // If any worker survived the join it would still be incrementing.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(executed.load(), at_return);
}

TEST(Parallel, ReusableAfterThrow) {
  // The sweep cache keeps a caller alive across failures: after catching
  // a mid-parallel exception, the very next parallel_for_ordered on the
  // same thread (and the same buffers) must behave normally.
  std::vector<std::atomic<int>> hits(64);
  try {
    parallel_for_ordered(4, hits.size(), [&](std::size_t i) {
      if (i >= 8) throw std::runtime_error("poisoned tail");
      ++hits[i];
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  for (auto& h : hits) h.store(0);
  parallel_for_ordered(4, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// --- WorkerPool ---------------------------------------------------------------

TEST(WorkerPool, RunsEveryWorkerIdOncePerRound) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](int id) { ++hits[static_cast<std::size_t>(id)]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, ReusesParkedThreadsAcrossRounds) {
  // The engine calls run() once per time window — thousands of rounds on
  // one pool.  Every round must cover every id, with a full barrier in
  // between (the counter from round k is complete before round k+1).
  WorkerPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.run([&](int) { total.fetch_add(1, std::memory_order_relaxed); });
    EXPECT_EQ(total.load(), (round + 1) * 3);
  }
}

TEST(WorkerPool, SingleThreadRunsInlineOnCaller) {
  WorkerPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.run([&](int id) {
    EXPECT_EQ(id, 0);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(WorkerPool, LowestWorkerExceptionWins) {
  // Mirrors parallel_for_ordered: with several workers throwing, the
  // caller deterministically sees the lowest id's exception.
  WorkerPool pool(4);
  try {
    pool.run([](int id) {
      if (id >= 1) throw std::runtime_error(std::to_string(id));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "1");
  }
}

TEST(WorkerPool, ReusableAfterThrow) {
  // A window that throws (a simulated node failure) must leave the pool
  // ready for the next window — errors are cleared, workers re-parked.
  WorkerPool pool(2);
  try {
    pool.run([](int) { throw std::runtime_error("window boom"); });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> ran{0};
  pool.run([&](int) { ++ran; });
  EXPECT_EQ(ran.load(), 2);
}

TEST(WorkerPool, ResolveEngineThreadsContract) {
  EXPECT_EQ(resolve_engine_threads(5), 5);
  EXPECT_GE(resolve_engine_threads(-1), 1);  // Hardware concurrency.
  EXPECT_GE(resolve_engine_threads(0), 1);   // Env default (serial).
}

// --- failpoints --------------------------------------------------------------

TEST(Failpoint, DisarmedIsSilentAndCheap) {
  util::Failpoints registry;
  EXPECT_FALSE(registry.hit("nothing.armed").has_value());
  EXPECT_EQ(registry.armed_count(), 0u);
  EXPECT_FALSE(util::failpoint("tests.not.armed").has_value());
}

TEST(Failpoint, FiresOnceByDefaultAndReturnsArg) {
  util::Failpoints registry;
  util::FailpointSpec spec;
  spec.arg = 42;
  registry.arm("tests.once", spec);
  EXPECT_TRUE(registry.armed("tests.once"));
  const auto first = registry.hit("tests.once");
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 42);
  EXPECT_FALSE(registry.hit("tests.once").has_value());  // times=1 spent.
  registry.disarm("tests.once");
  EXPECT_FALSE(registry.armed("tests.once"));
}

TEST(Failpoint, SkipTimesAndEverySchedule) {
  util::Failpoints registry;
  util::FailpointSpec spec;
  spec.skip = 2;   // Let visits 1-2 pass.
  spec.times = 3;  // Fire at most 3 times.
  spec.every = 2;  // ... on every 2nd eligible visit.
  registry.arm("tests.sched", spec);
  std::vector<bool> fired;
  for (int visit = 1; visit <= 10; ++visit) {
    fired.push_back(registry.hit("tests.sched").has_value());
  }
  // Visits:   1  2  3  4  5  6  7  8  9  10
  // Eligible:       1  2  3  4  5  6  7  8   (every 2nd fires, 3 max)
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, true, false,
                                      true, false, false, false}));
}

TEST(Failpoint, IndexStreamsCountIndependently) {
  util::Failpoints registry;
  util::FailpointSpec spec;
  spec.indices = {3, 7};
  registry.arm("tests.indexed", spec);
  EXPECT_FALSE(registry.hit("tests.indexed", 0).has_value());
  EXPECT_TRUE(registry.hit("tests.indexed", 3).has_value());
  EXPECT_FALSE(registry.hit("tests.indexed", 3).has_value());  // Spent.
  EXPECT_TRUE(registry.hit("tests.indexed", 7).has_value());   // Own budget.
  EXPECT_FALSE(registry.hit("tests.indexed", 5).has_value());
}

TEST(Failpoint, ArmFromStringParsesFullGrammar) {
  util::Failpoints registry;
  registry.arm_from_string("tests.a;tests.b=1:2:99;tests.c@4,9=0:-1");
  EXPECT_TRUE(registry.armed("tests.a"));
  ASSERT_TRUE(registry.hit("tests.a").has_value());

  EXPECT_FALSE(registry.hit("tests.b").has_value());  // skip=1
  const auto b = registry.hit("tests.b");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, 99);                                  // arg
  EXPECT_TRUE(registry.hit("tests.b").has_value());   // times=2
  EXPECT_FALSE(registry.hit("tests.b").has_value());

  EXPECT_FALSE(registry.hit("tests.c", 3).has_value());
  EXPECT_TRUE(registry.hit("tests.c", 4).has_value());
  EXPECT_TRUE(registry.hit("tests.c", 4).has_value());  // times=-1: unlimited
  EXPECT_TRUE(registry.hit("tests.c", 9).has_value());

  registry.clear();
  EXPECT_EQ(registry.armed_count(), 0u);
}

TEST(Failpoint, ArmFromStringRejectsMalformedInput) {
  util::Failpoints registry;
  EXPECT_THROW(registry.arm_from_string("tests.bad=abc"), ContractError);
  EXPECT_THROW(registry.arm_from_string("tests.bad=-1"), ContractError);
  EXPECT_THROW(registry.arm_from_string("tests.bad=0:1:0:0"), ContractError);
  EXPECT_THROW(registry.arm_from_string("tests.bad@x"), ContractError);
  EXPECT_THROW(registry.arm_from_string("=1"), ContractError);
}

TEST(Failpoint, ScopedFailpointDisarmsOnExit) {
  {
    const util::ScopedFailpoint fp("tests.scoped", {});
    EXPECT_TRUE(util::Failpoints::global().armed("tests.scoped"));
  }
  EXPECT_FALSE(util::Failpoints::global().armed("tests.scoped"));
  EXPECT_FALSE(util::failpoint("tests.scoped").has_value());
}

// --- misc helpers ------------------------------------------------------------------

TEST(Helpers, MeanAndRelDiff) {
  const std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 2.0);
  EXPECT_DOUBLE_EQ(rel_diff(110.0, 100.0), 0.1);
  EXPECT_THROW(rel_diff(1.0, 0.0), ContractError);
}

}  // namespace
}  // namespace gearsim
