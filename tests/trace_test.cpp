// Tests for the tracing substrate: record collection and the paper's
// active/idle and critical/reducible decompositions.
#include <gtest/gtest.h>

#include "mpi/comm.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "trace/analysis.hpp"
#include "trace/tracer.hpp"

namespace gearsim::trace {
namespace {

TraceRecord rec(mpi::CallType type, double enter, double exit,
                Bytes bytes = 0) {
  TraceRecord r;
  r.type = type;
  r.enter = seconds(enter);
  r.exit = seconds(exit);
  r.bytes = bytes;
  return r;
}

// --- Tracer ------------------------------------------------------------------

TEST(Tracer, RecordsEnterExitPairs) {
  Tracer t(2);
  t.on_enter(0, mpi::CallType::kSend, seconds(1.0), 100, 1);
  t.on_exit(0, mpi::CallType::kSend, seconds(1.5));
  t.on_enter(1, mpi::CallType::kRecv, seconds(0.5), 0, 0);
  t.on_exit(1, mpi::CallType::kRecv, seconds(2.0));
  ASSERT_EQ(t.records(0).size(), 1u);
  EXPECT_DOUBLE_EQ(t.records(0)[0].duration().value(), 0.5);
  EXPECT_EQ(t.records(0)[0].peer, 1);
  EXPECT_DOUBLE_EQ(t.records(1)[0].duration().value(), 1.5);
  EXPECT_EQ(t.total_records(), 2u);
}

TEST(Tracer, CountsByType) {
  Tracer t(1);
  for (int i = 0; i < 3; ++i) {
    t.on_enter(0, mpi::CallType::kSend, seconds(i), 1, 0);
    t.on_exit(0, mpi::CallType::kSend, seconds(i + 0.1));
  }
  t.on_enter(0, mpi::CallType::kBarrier, seconds(10), 0, -1);
  t.on_exit(0, mpi::CallType::kBarrier, seconds(11));
  EXPECT_EQ(t.count(0, mpi::CallType::kSend), 3u);
  EXPECT_EQ(t.count(0, mpi::CallType::kBarrier), 1u);
  EXPECT_EQ(t.count(0, mpi::CallType::kRecv), 0u);
}

TEST(Tracer, RejectsNestedAndUnbalancedCalls) {
  Tracer t(1);
  t.on_enter(0, mpi::CallType::kSend, seconds(0), 0, 0);
  EXPECT_THROW(t.on_enter(0, mpi::CallType::kRecv, seconds(0.1), 0, 0),
               ContractError);
  t.on_exit(0, mpi::CallType::kSend, seconds(0.2));
  EXPECT_THROW(t.on_exit(0, mpi::CallType::kSend, seconds(0.3)),
               ContractError);
}

TEST(Tracer, RejectsMismatchedExitType) {
  Tracer t(1);
  t.on_enter(0, mpi::CallType::kSend, seconds(0), 0, 0);
  EXPECT_THROW(t.on_exit(0, mpi::CallType::kRecv, seconds(1)), ContractError);
}

TEST(Tracer, ClearResets) {
  Tracer t(1);
  t.on_enter(0, mpi::CallType::kSend, seconds(0), 0, 0);
  t.on_exit(0, mpi::CallType::kSend, seconds(1));
  t.clear();
  EXPECT_EQ(t.total_records(), 0u);
}

// --- active/idle decomposition ---------------------------------------------------

TEST(Analysis, ActivePlusIdleEqualsWall) {
  const std::vector<TraceRecord> records = {
      rec(mpi::CallType::kRecv, 2.0, 3.0),
      rec(mpi::CallType::kSend, 5.0, 5.1),
      rec(mpi::CallType::kBarrier, 8.0, 9.0),
  };
  const RankBreakdown b = analyze_rank(records, seconds(0.0), seconds(10.0));
  EXPECT_DOUBLE_EQ(b.wall.value(), 10.0);
  EXPECT_NEAR(b.idle.value(), 2.1, 1e-12);
  EXPECT_NEAR(b.active.value(), 7.9, 1e-12);
  EXPECT_NEAR((b.active + b.idle).value(), b.wall.value(), 1e-12);
  EXPECT_EQ(b.mpi_calls, 3u);
}

TEST(Analysis, NoMpiMeansAllActive) {
  const RankBreakdown b = analyze_rank({}, seconds(0.0), seconds(5.0));
  EXPECT_DOUBLE_EQ(b.active.value(), 5.0);
  EXPECT_DOUBLE_EQ(b.idle.value(), 0.0);
  EXPECT_DOUBLE_EQ(b.critical.value(), 5.0);
  EXPECT_DOUBLE_EQ(b.reducible.value(), 0.0);
}

// --- reducible work ("last send -> blocking point") -------------------------------

TEST(Analysis, ComputeBetweenSendAndBlockIsReducible) {
  const std::vector<TraceRecord> records = {
      rec(mpi::CallType::kSend, 1.0, 1.1),   // Send completes at 1.1.
      rec(mpi::CallType::kRecv, 4.1, 5.0),   // Blocking point at 4.1.
  };
  const RankBreakdown b = analyze_rank(records, seconds(0.0), seconds(6.0));
  // Compute in (1.1, 4.1) = 3.0 s is reducible.
  EXPECT_NEAR(b.reducible.value(), 3.0, 1e-12);
  EXPECT_NEAR(b.critical.value(), b.active.value() - 3.0, 1e-12);
}

TEST(Analysis, ComputeBeforeTheSendIsCritical) {
  const std::vector<TraceRecord> records = {
      rec(mpi::CallType::kSend, 3.0, 3.1),
      rec(mpi::CallType::kRecv, 4.1, 5.0),
  };
  const RankBreakdown b = analyze_rank(records, seconds(0.0), seconds(5.0));
  // Only (3.1, 4.1) is reducible; the 3.0 s before the send are critical.
  EXPECT_NEAR(b.reducible.value(), 1.0, 1e-12);
}

TEST(Analysis, OnlyFirstBlockingPointAfterASendCounts) {
  const std::vector<TraceRecord> records = {
      rec(mpi::CallType::kSend, 1.0, 1.0),
      rec(mpi::CallType::kRecv, 2.0, 2.5),   // Closes the window (1.0,2.0).
      rec(mpi::CallType::kBarrier, 4.5, 5.0) // No send since: not reducible.
  };
  const RankBreakdown b = analyze_rank(records, seconds(0.0), seconds(5.0));
  EXPECT_NEAR(b.reducible.value(), 1.0, 1e-12);
}

TEST(Analysis, LaterSendRestartsTheWindow) {
  const std::vector<TraceRecord> records = {
      rec(mpi::CallType::kSend, 1.0, 1.0),
      rec(mpi::CallType::kSend, 3.0, 3.0),   // Restart: (1,3) not counted...
      rec(mpi::CallType::kRecv, 4.0, 4.5),   // ...only (3,4) is reducible.
  };
  const RankBreakdown b = analyze_rank(records, seconds(0.0), seconds(5.0));
  EXPECT_NEAR(b.reducible.value(), 1.0, 1e-12);
}

TEST(Analysis, IsendCountsAsSendIrecvDoesNotBlock) {
  const std::vector<TraceRecord> records = {
      rec(mpi::CallType::kIsend, 1.0, 1.0),
      rec(mpi::CallType::kIrecv, 2.0, 2.0),  // Nonblocking: window stays open.
      rec(mpi::CallType::kWait, 4.0, 4.8),   // The wait is the blocking point.
  };
  const RankBreakdown b = analyze_rank(records, seconds(0.0), seconds(5.0));
  EXPECT_NEAR(b.reducible.value(), 3.0, 1e-12);
}

TEST(Analysis, SendWithNoLaterBlockingPointYieldsNoReducible) {
  const std::vector<TraceRecord> records = {
      rec(mpi::CallType::kSend, 1.0, 1.1),
  };
  const RankBreakdown b = analyze_rank(records, seconds(0.0), seconds(9.0));
  EXPECT_DOUBLE_EQ(b.reducible.value(), 0.0);
}

TEST(Analysis, OutOfOrderRecordsThrow) {
  const std::vector<TraceRecord> records = {
      rec(mpi::CallType::kSend, 2.0, 2.5),
      rec(mpi::CallType::kRecv, 1.0, 3.0),
  };
  EXPECT_THROW(analyze_rank(records, seconds(0.0), seconds(5.0)),
               ContractError);
}

// --- cluster-level aggregation ------------------------------------------------------

TEST(Analysis, ClusterUsesMaxActiveRank) {
  Tracer t(2);
  // Rank 0 idles 4 s; rank 1 idles 1 s (more active -> the T^A(n) rank).
  t.on_enter(0, mpi::CallType::kRecv, seconds(1.0), 0, 1);
  t.on_exit(0, mpi::CallType::kRecv, seconds(5.0));
  t.on_enter(1, mpi::CallType::kRecv, seconds(6.0), 0, 0);
  t.on_exit(1, mpi::CallType::kRecv, seconds(7.0));
  const ClusterBreakdown c = analyze_cluster(t, seconds(0.0), seconds(10.0));
  EXPECT_DOUBLE_EQ(c.active_max.value(), 9.0);   // Rank 1.
  EXPECT_DOUBLE_EQ(c.idle_derived.value(), 1.0); // wall - active_max.
  EXPECT_DOUBLE_EQ(c.active_mean.value(), 7.5);
  EXPECT_DOUBLE_EQ(c.idle_mean.value(), 2.5);
  ASSERT_EQ(c.ranks.size(), 2u);
}

TEST(Analysis, ClusterCriticalReducibleComeFromMaxRank) {
  Tracer t(2);
  // Rank 0: a send then a blocking recv -> reducible window; very active.
  t.on_enter(0, mpi::CallType::kSend, seconds(1.0), 8, 1);
  t.on_exit(0, mpi::CallType::kSend, seconds(1.0));
  t.on_enter(0, mpi::CallType::kRecv, seconds(3.0), 0, 1);
  t.on_exit(0, mpi::CallType::kRecv, seconds(3.5));
  // Rank 1: idles most of the run.
  t.on_enter(1, mpi::CallType::kRecv, seconds(0.0), 0, 0);
  t.on_exit(1, mpi::CallType::kRecv, seconds(8.0));
  const ClusterBreakdown c = analyze_cluster(t, seconds(0.0), seconds(10.0));
  EXPECT_DOUBLE_EQ(c.active_max.value(), 9.5);      // Rank 0.
  EXPECT_DOUBLE_EQ(c.reducible.value(), 2.0);       // Rank 0's window.
  EXPECT_DOUBLE_EQ(c.critical.value(), 7.5);
}

// --- end-to-end: trace a real simulated exchange -------------------------------------

TEST(Analysis, EndToEndDecompositionOfASimulatedRun) {
  sim::Engine engine;
  net::Network network(net::ethernet_100mbps(), 2);
  mpi::World world(engine, network, 2);
  Tracer tracer(2);
  world.add_observer(&tracer);
  std::vector<Seconds> finish(2);
  for (int r = 0; r < 2; ++r) {
    sim::Process& proc =
        engine.spawn("rank" + std::to_string(r), [&, r](sim::Process& p) {
          mpi::Comm comm(world, r);
          if (r == 0) {
            p.delay(seconds(2.0));  // Compute.
            comm.send(1, 0, kilobytes(64));
            p.delay(seconds(1.0));  // Reducible tail...
            comm.recv(1, 1);        // ...ended by this blocking point.
          } else {
            comm.recv(0, 0);
            p.delay(seconds(0.5));
            comm.send(0, 1, kilobytes(64));
          }
          finish[r] = p.now();
        });
    world.bind_rank(r, proc);
  }
  engine.run();
  const Seconds wall = std::max(finish[0], finish[1]);
  const ClusterBreakdown c = analyze_cluster(tracer, Seconds{}, wall);
  // Rank 0 computed 3 s; rank 1 computed 0.5 s plus the tail after its
  // last MPI call until the run end (outside MPI counts as active).
  EXPECT_NEAR(c.ranks[0].active.value(), 3.0, 1e-3);
  const double tail = (wall - finish[1]).value();
  EXPECT_NEAR(c.ranks[1].active.value(), 0.5 + tail, 1e-3);
  EXPECT_NEAR(c.ranks[0].reducible.value(), 1.0, 1e-3);
  EXPECT_GT(c.ranks[1].idle.value(), 2.0);  // Waited for rank 0's send.
  EXPECT_DOUBLE_EQ(c.active_max.value(), c.ranks[0].active.value());
}

}  // namespace
}  // namespace gearsim::trace
