// Tests for supervised sweep execution: per-job failure isolation,
// transient-vs-permanent retry classification, the wall-clock watchdog,
// strict-mode throw-through, and the determinism contract (completed
// results bit-identical to an unsupervised SweepRunner).  Every fault is
// injected through util::Failpoints keyed by job index, so each failure
// schedule replays exactly under any worker count.
//
// The Soak* tests are the CI resilience gate: a 200-job sweep under a
// seeded random failure pattern plus store-write corruption must complete
// every healthy job, report exactly the injected failures, and serve zero
// corrupt bytes on the warm re-run (docs/RESILIENCE.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "cluster/config.hpp"
#include "exec/result_cache.hpp"
#include "exec/result_io.hpp"
#include "exec/store.hpp"
#include "exec/supervisor.hpp"
#include "exec/sweep_runner.hpp"
#include "obs/metrics.hpp"
#include "util/failpoint.hpp"
#include "workloads/jacobi.hpp"

namespace gearsim::exec {
namespace {

using util::FailpointSpec;
using util::ScopedFailpoint;

/// A scratch directory removed on destruction, for disk-store tests.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& tag)
      : path(std::filesystem::temp_directory_path() /
             ("gearsim_supervisor_test_" + tag)) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

/// Fast Jacobi variant so a 200-job soak stays in test-suite budget.
workloads::Jacobi tiny_jacobi() {
  workloads::Jacobi::Params p;
  p.iterations = 5;
  p.seq_active = seconds(2.0);
  p.norm_every = 1;
  return workloads::Jacobi(p);
}

std::vector<SweepPoint> make_points(const cluster::Workload& w,
                                    std::size_t count) {
  std::vector<SweepPoint> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    points.push_back(SweepPoint{&w, 2, i % 6, static_cast<int>(i / 6)});
  }
  return points;
}

FailpointSpec at_indices(std::vector<std::int64_t> indices,
                         std::int64_t times = 1, std::int64_t arg = 0) {
  FailpointSpec spec;
  spec.indices = std::move(indices);
  spec.times = times;
  spec.arg = arg;
  return spec;
}

// ---- isolation and retries --------------------------------------------------

TEST(SweepSupervisorTest, IsolatesOneFailingJob) {
  const workloads::Jacobi jacobi = tiny_jacobi();
  const auto points = make_points(jacobi, 4);
  const SweepSupervisor supervisor(cluster::athlon_cluster());
  const ScopedFailpoint fp("exec.supervisor.job.throw_permanent",
                           at_indices({2}));

  const SweepOutcome outcome = supervisor.run(points);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.completed(), 3u);
  ASSERT_EQ(outcome.failures.size(), 1u);
  const JobFailure& f = outcome.failures[0];
  EXPECT_EQ(f.index, 2u);
  EXPECT_EQ(f.kind, FailureKind::kPermanent);
  EXPECT_EQ(f.attempts, 1);  // Permanent failures never retry.
  EXPECT_NE(f.error.find("throw_permanent"), std::string::npos);
  EXPECT_NE(f.point.find("gear=3"), std::string::npos);
  EXPECT_FALSE(outcome.results[2].has_value());
  EXPECT_TRUE(outcome.results[0].has_value());
  EXPECT_TRUE(outcome.results[3].has_value());
  EXPECT_NE(outcome.report().find("job #2"), std::string::npos);
}

TEST(SweepSupervisorTest, TransientFailureRetriesToSuccess) {
  const workloads::Jacobi jacobi = tiny_jacobi();
  const auto points = make_points(jacobi, 2);
  const SweepRunner reference(cluster::athlon_cluster());
  const auto clean = reference.run(points);

  SupervisorOptions sup;
  sup.max_attempts = 3;
  const SweepSupervisor supervisor(cluster::athlon_cluster(), {}, sup);
  // Job 0 throws a TransientError on its first two attempts only.
  const ScopedFailpoint fp("exec.supervisor.job.throw",
                           at_indices({0}, /*times=*/2));

  const SweepOutcome outcome = supervisor.run(points);
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.retries, 2u);
  ASSERT_TRUE(outcome.results[0].has_value());
  // The retried result is bit-identical to a failure-free run: retries
  // re-enter the same deterministic simulation.
  EXPECT_EQ(to_json(*outcome.results[0]), to_json(clean[0]));
  EXPECT_EQ(to_json(*outcome.results[1]), to_json(clean[1]));
}

TEST(SweepSupervisorTest, TransientRetryBudgetExhausts) {
  const workloads::Jacobi jacobi = tiny_jacobi();
  const auto points = make_points(jacobi, 2);
  SupervisorOptions sup;
  sup.max_attempts = 2;
  const SweepSupervisor supervisor(cluster::athlon_cluster(), {}, sup);
  const ScopedFailpoint fp("exec.supervisor.job.throw",
                           at_indices({1}, /*times=*/-1));

  const SweepOutcome outcome = supervisor.run(points);
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_EQ(outcome.failures[0].index, 1u);
  EXPECT_EQ(outcome.failures[0].attempts, 2);
  EXPECT_EQ(outcome.failures[0].kind, FailureKind::kTransient);
  EXPECT_EQ(outcome.retries, 1u);
  EXPECT_TRUE(outcome.results[0].has_value());
}

TEST(SweepSupervisorTest, CustomClassifierOverridesDefault) {
  const workloads::Jacobi jacobi = tiny_jacobi();
  const auto points = make_points(jacobi, 1);
  SupervisorOptions sup;
  sup.max_attempts = 3;
  // Treat even the permanent failpoint's SimulationError as transient:
  // the job must then burn the whole retry budget.
  sup.classify = [](const std::exception&) {
    return FailureKind::kTransient;
  };
  const SweepSupervisor supervisor(cluster::athlon_cluster(), {}, sup);
  const ScopedFailpoint fp("exec.supervisor.job.throw_permanent",
                           at_indices({0}, /*times=*/-1));

  const SweepOutcome outcome = supervisor.run(points);
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_EQ(outcome.failures[0].attempts, 3);
  EXPECT_EQ(outcome.failures[0].kind, FailureKind::kTransient);
}

TEST(SweepSupervisorTest, DefaultClassification) {
  EXPECT_EQ(classify_failure(TransientError("io wobble")),
            FailureKind::kTransient);
  EXPECT_EQ(classify_failure(std::system_error(
                std::make_error_code(std::errc::io_error))),
            FailureKind::kTransient);
  EXPECT_EQ(classify_failure(ContractError("bad point")),
            FailureKind::kPermanent);
  EXPECT_EQ(classify_failure(SimulationError("deadlock")),
            FailureKind::kPermanent);
  EXPECT_EQ(classify_failure(std::runtime_error("anything else")),
            FailureKind::kPermanent);
}

// ---- validation, strict mode, watchdog --------------------------------------

TEST(SweepSupervisorTest, EscapedJobExceptionIsContainedAndBookkept) {
  // Regression for the watchdog-vs-fail-fast race: an exception escaping
  // the per-attempt retry loop (classification, allocation, the escape
  // failpoint itself) used to propagate into parallel_for_ordered, whose
  // fail-fast stop abandoned not-yet-claimed jobs and skipped the
  // watchdog bookkeeping for in-flight ones.  The outer catch now turns
  // any escape into a permanent JobFailure, so every other job still
  // runs and every completed job still gets its watchdog check.
  const workloads::Jacobi jacobi = tiny_jacobi();
  const auto points = make_points(jacobi, 6);
  SweepOptions sweep;
  sweep.jobs = 2;
  SupervisorOptions sup;
  // A watchdog threshold of ~zero flags every completed job: proves the
  // flagging pass ran for all of them despite the escape.
  sup.watchdog_seconds = 1e-9;
  const SweepSupervisor supervisor(cluster::athlon_cluster(), sweep, sup);
  const ScopedFailpoint fp("exec.supervisor.job.escape", at_indices({3}));

  const SweepOutcome outcome = supervisor.run(points);
  EXPECT_EQ(outcome.completed(), 5u);  // No abandoned tail.
  ASSERT_EQ(outcome.failures.size(), 1u);
  const JobFailure& f = outcome.failures[0];
  EXPECT_EQ(f.index, 3u);
  EXPECT_EQ(f.kind, FailureKind::kPermanent);
  EXPECT_NE(f.error.find("supervisor job escape:"), std::string::npos);
  EXPECT_NE(f.error.find("exec.supervisor.job.escape"), std::string::npos);
  // Watchdog flags every *completed* job (5 of 6) — the escaped job never
  // finished an attempt, so it is not in the runaway list, and the list
  // stays sorted by job index.
  EXPECT_EQ(outcome.runaway.size(), 5u);
  EXPECT_TRUE(std::is_sorted(outcome.runaway.begin(), outcome.runaway.end()));
  for (const std::size_t idx : outcome.runaway) EXPECT_NE(idx, 3u);
}

TEST(SweepSupervisorTest, ValidationFailureIsIsolated) {
  const workloads::Jacobi jacobi = tiny_jacobi();
  std::vector<SweepPoint> points = make_points(jacobi, 3);
  points[1].nodes = 0;  // Invalid: fails validate_point.

  const SweepSupervisor supervisor(cluster::athlon_cluster());
  const SweepOutcome outcome = supervisor.run(points);
  EXPECT_EQ(outcome.completed(), 2u);
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_EQ(outcome.failures[0].index, 1u);
  EXPECT_EQ(outcome.failures[0].attempts, 0);  // Never reached simulation.
  EXPECT_EQ(outcome.failures[0].kind, FailureKind::kPermanent);
}

TEST(SweepSupervisorTest, StrictModeRethrowsLowestIndexFailure) {
  const workloads::Jacobi jacobi = tiny_jacobi();
  const auto points = make_points(jacobi, 4);
  SupervisorOptions sup;
  sup.strict = true;
  const SweepSupervisor supervisor(cluster::athlon_cluster(), {}, sup);
  const ScopedFailpoint fp("exec.supervisor.job.throw_permanent",
                           at_indices({3, 1}));

  try {
    (void)supervisor.run(points);
    FAIL() << "strict mode must rethrow";
  } catch (const SimulationError& e) {
    // The lowest-index failure, matching what serial throw-through
    // surfaces first.
    EXPECT_NE(std::string(e.what()).find("job 1"), std::string::npos);
  }
}

TEST(SweepSupervisorTest, WatchdogFlagsRunawayJob) {
  const workloads::Jacobi jacobi = tiny_jacobi();
  const auto points = make_points(jacobi, 3);
  SupervisorOptions sup;
  sup.watchdog_seconds = 0.005;
  const SweepSupervisor supervisor(cluster::athlon_cluster(), {}, sup);
  // Job 1 stalls for 50 ms of wall time — a runaway config.  It still
  // completes: the watchdog flags, it never kills.
  const ScopedFailpoint fp("exec.supervisor.job.slow",
                           at_indices({1}, /*times=*/1, /*arg=*/50));

  const SweepOutcome outcome = supervisor.run(points);
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.completed(), 3u);
  ASSERT_FALSE(outcome.runaway.empty());
  EXPECT_TRUE(std::find(outcome.runaway.begin(), outcome.runaway.end(), 1u) !=
              outcome.runaway.end());
}

// ---- determinism and cache integration --------------------------------------

TEST(SweepSupervisorTest, MatchesUnsupervisedRunnerBitIdentical) {
  const workloads::Jacobi jacobi = tiny_jacobi();
  const auto points = make_points(jacobi, 12);
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions wide;
  wide.jobs = 8;
  const SweepRunner runner(cluster::athlon_cluster(), serial);
  const SweepSupervisor supervisor(cluster::athlon_cluster(), wide);

  const auto reference = runner.run(points);
  const SweepOutcome outcome = supervisor.run(points);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome.results.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(to_json(*outcome.results[i]), to_json(reference[i]))
        << "point " << i;
  }
}

TEST(SweepSupervisorTest, FailedJobDoesNotPoisonCache) {
  const workloads::Jacobi jacobi = tiny_jacobi();
  const auto points = make_points(jacobi, 2);
  ResultCache cache;
  SweepOptions options;
  options.cache = &cache;
  const SweepSupervisor supervisor(cluster::athlon_cluster(), options);
  {
    const ScopedFailpoint fp("exec.supervisor.job.throw_permanent",
                             at_indices({0}));
    const SweepOutcome outcome = supervisor.run(points);
    EXPECT_EQ(outcome.completed(), 1u);
    EXPECT_EQ(cache.stats().insertions, 1u);  // Only the success cached.
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_FALSE(outcome.failures[0].key.empty());  // Hash named anyway.
  }
  // Failpoint gone: the failed point simulates (a miss, not a poisoned
  // hit), the completed one is served from memory.
  const SweepOutcome retry = supervisor.run(points);
  EXPECT_TRUE(retry.ok());
  EXPECT_EQ(cache.stats().hits, 1u);
  const SweepRunner reference(cluster::athlon_cluster());
  const auto clean = reference.run(points);
  EXPECT_EQ(to_json(*retry.results[0]), to_json(clean[0]));
}

TEST(SweepSupervisorTest, ReportsSupervisionMetrics) {
  const workloads::Jacobi jacobi = tiny_jacobi();
  const auto points = make_points(jacobi, 3);
  obs::MetricsRegistry reg;
  SweepOptions options;
  options.metrics = &reg;
  SupervisorOptions sup;
  sup.max_attempts = 2;
  const SweepSupervisor supervisor(cluster::athlon_cluster(), options, sup);
  const ScopedFailpoint fp("exec.supervisor.job.throw",
                           at_indices({2}, /*times=*/-1));

  const SweepOutcome outcome = supervisor.run(points);
  EXPECT_EQ(outcome.failures.size(), 1u);
  EXPECT_EQ(reg.counter("exec.supervisor.jobs").value(), 3u);
  EXPECT_EQ(reg.counter("exec.supervisor.failures").value(), 1u);
  EXPECT_EQ(reg.counter("exec.supervisor.retries").value(), 1u);
}

// ---- soak: the CI resilience gate -------------------------------------------

/// 200 jobs, 20 seeded-random permanent failures, store writes torn every
/// 7th insert.  The supervised sweep must complete exactly the healthy
/// 180, report exactly the injected indices, and a warm re-run over the
/// (partially corrupted) store must quarantine — never serve — the torn
/// entries and reproduce every result byte for byte.
TEST(SoakTest, SupervisedSweepUnderSeededFaults) {
  const workloads::Jacobi jacobi = tiny_jacobi();
  const std::size_t kJobs = 200;
  const auto points = make_points(jacobi, kJobs);

  // Seeded, so every run of the suite injects the identical pattern.
  std::mt19937 rng(20260808u);
  std::set<std::int64_t> failing;
  std::uniform_int_distribution<std::int64_t> pick(
      0, static_cast<std::int64_t>(kJobs) - 1);
  while (failing.size() < 20) failing.insert(pick(rng));

  const TempDir dir("soak");
  ResultCache::Options cache_options;
  cache_options.disk_dir = dir.path.string();

  std::vector<std::string> cold(kJobs);
  {
    ResultCache cache(cache_options);
    SweepOptions options;
    options.cache = &cache;
    const SweepSupervisor supervisor(cluster::athlon_cluster(), options);
    const ScopedFailpoint fail_jobs(
        "exec.supervisor.job.throw_permanent",
        at_indices({failing.begin(), failing.end()}, /*times=*/-1));
    FailpointSpec torn;  // Tear store writes #7, #14, #21, ...
    torn.skip = 6;
    torn.times = -1;
    torn.every = 7;
    const ScopedFailpoint tear_writes("exec.store.write.truncate", torn);

    const SweepOutcome outcome = supervisor.run(points);
    EXPECT_EQ(outcome.completed(), kJobs - failing.size());
    ASSERT_EQ(outcome.failures.size(), failing.size());
    for (const JobFailure& f : outcome.failures) {
      EXPECT_EQ(failing.count(static_cast<std::int64_t>(f.index)), 1u)
          << "unexpected failure at job " << f.index;
      EXPECT_EQ(f.kind, FailureKind::kPermanent);
    }
    for (std::size_t i = 0; i < kJobs; ++i) {
      if (outcome.results[i].has_value()) cold[i] = to_json(*outcome.results[i]);
    }
  }

  // The torn writes left corrupt entries behind; verify sees them.
  const StoreReport damage = verify_store(dir.path.string());
  const std::size_t torn = damage.corrupt.size();
  EXPECT_GT(torn, 0u);
  EXPECT_EQ(damage.scanned, kJobs - failing.size());

  // Warm re-run, failpoints disarmed: corrupt entries are quarantined and
  // recomputed, valid entries served — and every byte matches the cold
  // pass.  Zero corrupt entries served is exactly this equality.
  {
    ResultCache cache(cache_options);
    SweepOptions options;
    options.cache = &cache;
    const SweepSupervisor supervisor(cluster::athlon_cluster(), options);
    const SweepOutcome warm = supervisor.run(points);
    EXPECT_TRUE(warm.ok());
    EXPECT_EQ(warm.results.size(), kJobs);
    for (std::size_t i = 0; i < kJobs; ++i) {
      ASSERT_TRUE(warm.results[i].has_value());
      if (!cold[i].empty()) {
        EXPECT_EQ(to_json(*warm.results[i]), cold[i]) << "point " << i;
      }
    }
    EXPECT_EQ(cache.stats().corrupt, torn);
    EXPECT_EQ(cache.stats().quarantined, torn);
    EXPECT_EQ(cache.stats().disk_hits, kJobs - failing.size() - torn);
  }

  // After the warm pass the store is whole again: quarantine holds the
  // torn bytes, the live directory verifies clean.
  const StoreReport healed = verify_store(dir.path.string());
  EXPECT_TRUE(healed.corrupt.empty());
  EXPECT_EQ(healed.scanned, kJobs);
}

}  // namespace
}  // namespace gearsim::exec
