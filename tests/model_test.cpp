// Tests for the analytic model layer: Amdahl fitting, communication
// classification, the naive/refined predictors, and curve analytics.
#include <gtest/gtest.h>

#include <cmath>

#include "model/amdahl.hpp"
#include "model/comm_model.hpp"
#include "model/predictor.hpp"
#include "model/tradeoff.hpp"

namespace gearsim::model {
namespace {

// --- Amdahl ------------------------------------------------------------------

std::vector<Seconds> amdahl_series(double t1, double fs,
                                   const std::vector<double>& nodes) {
  std::vector<Seconds> out;
  for (double n : nodes) out.push_back(seconds(t1 * ((1.0 - fs) / n + fs)));
  return out;
}

TEST(Amdahl, RecoversExactFractions) {
  const std::vector<double> nodes = {1, 2, 4, 8};
  const auto active = amdahl_series(100.0, 0.07, nodes);
  const AmdahlFit fit = fit_amdahl(nodes, active);
  EXPECT_NEAR(fit.serial_fraction, 0.07, 1e-9);
  EXPECT_NEAR(fit.t1.value(), 100.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.parallel_fraction(), 0.93, 1e-9);
}

TEST(Amdahl, PredictsActiveTime) {
  const std::vector<double> nodes = {1, 2, 4};
  const AmdahlFit fit = fit_amdahl(nodes, amdahl_series(50.0, 0.1, nodes));
  EXPECT_NEAR(fit.active_time(10).value(), 50.0 * (0.9 / 10 + 0.1), 1e-9);
}

TEST(Amdahl, PerfectlyParallelCode) {
  const std::vector<double> nodes = {1, 2, 4, 8, 16};
  const AmdahlFit fit = fit_amdahl(nodes, amdahl_series(80.0, 0.0, nodes));
  EXPECT_NEAR(fit.serial_fraction, 0.0, 1e-9);
}

TEST(Amdahl, ClampsNegativeNoiseToZero) {
  // Slightly superlinear data would give Fs < 0; the fit clamps.
  const std::vector<double> nodes = {1, 2, 4};
  const std::vector<Seconds> active = {seconds(100.0), seconds(48.0),
                                       seconds(23.0)};
  EXPECT_GE(fit_amdahl(nodes, active).serial_fraction, 0.0);
}

TEST(Amdahl, PerConfigFamilyIsConstantForExactData) {
  const std::vector<double> nodes = {1, 2, 4, 8};
  const auto active = amdahl_series(100.0, 0.05, nodes);
  const auto family =
      per_config_serial_fractions(seconds(100.0), nodes, active);
  ASSERT_EQ(family.size(), 3u);  // n=1 is excluded.
  for (double fs : family) EXPECT_NEAR(fs, 0.05, 1e-9);
}

TEST(Amdahl, FamilyDetectsParallelismChange) {
  // The paper's CG outlier: parallelism increases from 4 to 8 nodes on
  // one cluster — visible as a *decreasing* per-config F_s.
  const std::vector<double> nodes = {2, 4, 8};
  const std::vector<Seconds> active = {seconds(52.5), seconds(27.5),
                                       seconds(13.0)};
  const auto family =
      per_config_serial_fractions(seconds(100.0), nodes, active);
  EXPECT_GT(family[0], family[2]);
}

TEST(Amdahl, TrendRegressionExtrapolates) {
  const std::vector<double> nodes = {2, 4, 8, 16};
  const std::vector<double> fs = {0.050, 0.052, 0.054, 0.058};
  const LinearFit trend = fit_serial_fraction_trend(nodes, fs);
  EXPECT_NEAR(trend.at(32.0), 0.0665, 0.003);
}

TEST(Amdahl, SingleSampleTrendIsConstant) {
  const std::vector<double> nodes = {4};
  const std::vector<double> fs = {0.05};
  const LinearFit trend = fit_serial_fraction_trend(nodes, fs);
  EXPECT_DOUBLE_EQ(trend.at(100.0), 0.05);
}

// --- communication classification ------------------------------------------------

std::vector<Seconds> shaped(ScalingShape s, double a, double b,
                            const std::vector<double>& nodes) {
  std::vector<Seconds> out;
  for (double n : nodes) out.push_back(seconds(a + b * shape_basis(s, n)));
  return out;
}

TEST(CommModel, ClassifiesEachShape) {
  const std::vector<double> nodes = {1, 2, 4, 8, 16};  // n=1 gets dropped.
  for (auto s : {ScalingShape::kLogarithmic, ScalingShape::kLinear,
                 ScalingShape::kQuadratic}) {
    const CommFit fit =
        classify_communication(nodes, shaped(s, 1.0, 2.0, nodes));
    EXPECT_EQ(fit.shape(), s) << to_string(s);
  }
}

TEST(CommModel, ConstantWinsOnFlatData) {
  const std::vector<double> nodes = {2, 4, 8, 16};
  const std::vector<Seconds> idle = {seconds(5.01), seconds(4.99),
                                     seconds(5.02), seconds(4.98)};
  EXPECT_EQ(classify_communication(nodes, idle).shape(),
            ScalingShape::kConstant);
}

TEST(CommModel, PredictionsClampToZero) {
  const std::vector<double> nodes = {2, 4, 8};
  const CommFit fit = fit_communication(
      ScalingShape::kLinear, nodes,
      shaped(ScalingShape::kLinear, 10.0, -2.0, nodes));
  EXPECT_DOUBLE_EQ(fit.idle_time(100.0).value(), 0.0);
}

TEST(CommModel, ForcedShapeStillFitsCoefficients) {
  const std::vector<double> nodes = {2, 4, 8};
  const CommFit fit = fit_communication(
      ScalingShape::kQuadratic, nodes,
      shaped(ScalingShape::kQuadratic, 0.5, 0.1, nodes));
  EXPECT_NEAR(fit.best.a, 0.5, 1e-9);
  EXPECT_NEAR(fit.best.b, 0.1, 1e-9);
  EXPECT_NEAR(fit.idle_time(32).value(), 0.5 + 0.1 * 1024, 1e-6);
}

TEST(CommModel, SingleNodeSamplesAreExcluded) {
  const std::vector<double> nodes = {1, 1, 2, 4};
  const std::vector<Seconds> idle = {seconds(0), seconds(0), seconds(2),
                                     seconds(4)};
  EXPECT_THROW(classify_communication(nodes, idle), ContractError);
}

// --- predictors -----------------------------------------------------------------

GearPoint gear(double slowdown, double p_active, double p_idle) {
  return GearPoint{0, slowdown, watts(p_active), watts(p_idle)};
}

TimeDecomposition decomp(double active, double idle, double reducible,
                         int nodes) {
  TimeDecomposition t;
  t.active = seconds(active);
  t.idle = seconds(idle);
  t.reducible = seconds(reducible);
  t.critical = seconds(active - reducible);
  t.nodes = nodes;
  return t;
}

TEST(Predictor, NaiveMatchesPaperEquations) {
  // T_g = S_g T^A + T^I; E_g = m (P_g S_g T^A + I_g T^I).
  const Prediction p = predict_naive(decomp(100, 20, 0, 4),
                                     gear(1.2, 120.0, 90.0));
  EXPECT_NEAR(p.time.value(), 1.2 * 100 + 20, 1e-9);
  EXPECT_NEAR(p.energy.value(), 4 * (120.0 * 120 + 90.0 * 20), 1e-9);
}

TEST(Predictor, RefinedEqualsNaiveWithoutReducibleWork) {
  const TimeDecomposition t = decomp(100, 20, 0, 2);
  const GearPoint g = gear(1.3, 110.0, 85.0);
  const Prediction naive = predict_naive(t, g);
  const Prediction refined = predict_refined(t, g);
  EXPECT_NEAR(refined.time.value(), naive.time.value(), 1e-9);
  EXPECT_NEAR(refined.energy.value(), naive.energy.value(), 1e-9);
}

TEST(Predictor, RefinedHidesReducibleSlowdownInSlack) {
  // 40 s reducible, 20 s idle, S_g = 1.2: the 8 s of stretch fit inside
  // the idle slack, so only the critical part extends the run.
  const TimeDecomposition t = decomp(100, 20, 40, 1);
  const GearPoint g = gear(1.2, 100.0, 80.0);
  const Prediction p = predict_refined(t, g);
  // T = S_g(TC+TR) + TI + TR - S_g TR = 1.2*100 + 20 + 40 - 48 = 132.
  EXPECT_NEAR(p.time.value(), 132.0, 1e-9);
  EXPECT_LT(p.time.value(), predict_naive(t, g).time.value());
  // E = P S_g(TC+TR) + I (TI + TR - S_g TR) = 100*120 + 80*12.
  EXPECT_NEAR(p.energy.value(), 12000.0 + 960.0, 1e-9);
}

TEST(Predictor, RefinedInflectionWhenSlackExhausted) {
  // TI + TR <= S_g TR: all slack consumed; pure active stretch.
  const TimeDecomposition t = decomp(100, 5, 80, 1);
  const GearPoint g = gear(1.5, 100.0, 80.0);
  const Prediction p = predict_refined(t, g);
  EXPECT_NEAR(p.time.value(), 150.0, 1e-9);
  EXPECT_NEAR(p.energy.value(), 100.0 * 150.0, 1e-9);
}

TEST(Predictor, RefinedIsContinuousAtTheInflection) {
  // Approach the inflection from both sides; times must agree.
  const GearPoint g = gear(1.25, 100.0, 80.0);
  const double tr = 80.0;                // S_g TR = 100 = TI + TR at TI=20.
  const Prediction below =
      predict_refined(decomp(100, 20.0 - 1e-9, tr, 1), g);
  const Prediction above =
      predict_refined(decomp(100, 20.0 + 1e-9, tr, 1), g);
  EXPECT_NEAR(below.time.value(), above.time.value(), 1e-6);
}

TEST(Predictor, TopGearIsIdentityOnTime) {
  const TimeDecomposition t = decomp(100, 30, 50, 8);
  const GearPoint g = gear(1.0, 145.0, 98.0);
  EXPECT_NEAR(predict_refined(t, g).time.value(), 130.0, 1e-9);
  EXPECT_NEAR(predict_naive(t, g).time.value(), 130.0, 1e-9);
}

TEST(Predictor, RejectsInconsistentDecomposition) {
  TimeDecomposition t = decomp(100, 10, 20, 1);
  t.critical = seconds(100.0);  // critical + reducible != active.
  EXPECT_THROW(predict_refined(t, gear(1.1, 100, 80)), ContractError);
  EXPECT_THROW(predict_naive(decomp(100, 10, 0, 1), gear(0.9, 100, 80)),
               ContractError);
}

// --- tradeoff analytics ------------------------------------------------------------

Curve make_curve(int nodes, std::initializer_list<std::pair<double, double>>
                                time_energy) {
  Curve c;
  c.nodes = nodes;
  int label = 1;
  for (const auto& [t, e] : time_energy) {
    c.points.push_back(EtPoint{label++, seconds(t), joules(e)});
  }
  return c;
}

TEST(Tradeoff, SlopeMatchesPaperDefinition) {
  const EtPoint a{1, seconds(100.0), joules(15000.0)};
  const EtPoint b{2, seconds(102.0), joules(14000.0)};
  EXPECT_NEAR(slope_between(a, b), -500.0, 1e-9);
  EXPECT_THROW((void)slope_between(a, a), ContractError);
}

TEST(Tradeoff, RelativeDeltas) {
  const Curve c = make_curve(1, {{100, 1000}, {110, 900}});
  const auto rel = relative_to_fastest(c);
  EXPECT_NEAR(rel[1].time_delta, 0.10, 1e-12);
  EXPECT_NEAR(rel[1].energy_delta, -0.10, 1e-12);
}

TEST(Tradeoff, MinEnergyIndex) {
  const Curve c = make_curve(1, {{100, 1000}, {105, 950}, {120, 990}});
  EXPECT_EQ(min_energy_index(c), 1u);
}

TEST(Tradeoff, ParetoFrontierDropsDominatedPoints) {
  const Curve c =
      make_curve(1, {{100, 1000}, {105, 950}, {110, 960}, {120, 940}});
  const auto frontier = pareto_frontier(c);
  // {110, 960} is dominated by {105, 950}.
  EXPECT_EQ(frontier, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(Tradeoff, CaseClassificationGeometry) {
  const Curve small = make_curve(4, {{100, 1000}, {104, 980}, {115, 995}});
  // Case 2: faster and cheaper at the fastest gear.
  const Curve super = make_curve(8, {{48, 990}, {50, 960}});
  EXPECT_EQ(classify_transition(small, super),
            SpeedupCase::kPerfectOrSuper);
  // Case 3: fastest gear costs more, but gear 2 dominates small's fastest.
  const Curve good = make_curve(8, {{60, 1100}, {70, 995}});
  EXPECT_EQ(classify_transition(small, good), SpeedupCase::kGoodSpeedup);
  // Case 1: everything on the bigger cluster costs more energy.
  const Curve poor = make_curve(8, {{80, 1400}, {90, 1300}});
  EXPECT_EQ(classify_transition(small, poor), SpeedupCase::kPoorSpeedup);
}

TEST(Tradeoff, ClassificationRequiresGrowth) {
  const Curve a = make_curve(4, {{100, 1000}});
  const Curve b = make_curve(2, {{100, 1000}});
  EXPECT_THROW((void)classify_transition(a, b), ContractError);
}

TEST(Tradeoff, PowerCapPicksFastestFeasiblePoint) {
  // Mean powers: 10, 9.05, 8.3 W.
  const Curve c = make_curve(1, {{100, 1000}, {105, 950}, {108, 900}});
  const auto pick = best_under_power_cap(c, watts(9.5));
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->gear_label, 2);
  EXPECT_FALSE(best_under_power_cap(c, watts(5.0)).has_value());
}

TEST(Tradeoff, EnergyBudgetQuery) {
  const Curve c = make_curve(1, {{100, 1000}, {105, 950}, {108, 900}});
  const auto pick = best_under_energy_budget(c, joules(960.0));
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->gear_label, 2);
}

TEST(Tradeoff, ConcordanceCountsSortedPairs) {
  const std::vector<TradeoffSummary> sorted = {
      {"A", 800, -0.1, 0}, {"B", 80, -0.5, 0}, {"C", 8, -2.0, 0}};
  EXPECT_DOUBLE_EQ(upm_slope_concordance(sorted), 1.0);
  const std::vector<TradeoffSummary> one_outlier = {
      {"A", 800, -0.1, 0}, {"B", 80, -2.0, 0}, {"C", 8, -0.5, 0}};
  EXPECT_NEAR(upm_slope_concordance(one_outlier), 2.0 / 3.0, 1e-12);
}

TEST(Tradeoff, CurveFromRunsSortsByGear) {
  std::vector<cluster::RunResult> runs(2);
  runs[0].nodes = 4;
  runs[0].gear_label = 2;
  runs[0].wall = seconds(110);
  runs[0].energy = joules(900);
  runs[1].nodes = 4;
  runs[1].gear_label = 1;
  runs[1].wall = seconds(100);
  runs[1].energy = joules(1000);
  const Curve c = curve_from_runs(runs);
  EXPECT_EQ(c.points[0].gear_label, 1);
  EXPECT_DOUBLE_EQ(c.fastest().time.value(), 100.0);
  EXPECT_DOUBLE_EQ(c.at_gear(2).energy.value(), 900.0);
  EXPECT_THROW((void)c.at_gear(5), ContractError);
}

}  // namespace
}  // namespace gearsim::model
