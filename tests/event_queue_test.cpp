// Focused tests for the pooled event queue and the small-buffer EventFn:
// FIFO ordering under interleaved push/pop at equal timestamps (the
// const_cast move-from-top regression), scheduling-time validation,
// batched submission, and the inline/heap capture paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/event_queue.hpp"

namespace gearsim::sim {
namespace {

// Satellite of the kernel rewrite: the old pop() move-constructed from a
// const_cast of the priority_queue top and then called std::pop_heap,
// which compared (and moved) the moved-from entry.  The new pop extracts
// the callable from its pool slot before any re-heapify, so every pop
// must yield a valid, invocable callback in exact (time, seq) order even
// when pops interleave with pushes at equal timestamps.
TEST(EventQueue, InterleavedEqualTimePushesPopFifoWithValidCallbacks) {
  EventQueue q;
  std::vector<int> fired;
  const Seconds t = seconds(1.0);
  q.push(t, [&] { fired.push_back(0); });
  q.push(t, [&] { fired.push_back(1); });

  EventQueue::Popped first = q.pop();
  ASSERT_TRUE(static_cast<bool>(first.fn));
  first.fn();

  // Push more events at the *same* timestamp between pops; they must
  // sort after the still-queued earlier event.
  q.push(t, [&] { fired.push_back(2); });
  q.push(t, [&] { fired.push_back(3); });

  while (!q.empty()) {
    EventQueue::Popped p = q.pop();
    ASSERT_TRUE(static_cast<bool>(p.fn));
    EXPECT_EQ(p.time, t);
    p.fn();
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, PopReportsMonotonicSeqForEqualTimes) {
  EventQueue q;
  for (int i = 0; i < 8; ++i) q.push(seconds(2.0), [] {});
  std::uint64_t prev_seq = 0;
  bool first = true;
  while (!q.empty()) {
    const EventQueue::Popped p = q.pop();
    if (!first) {
      EXPECT_GT(p.seq, prev_seq);
    }
    prev_seq = p.seq;
    first = false;
  }
}

TEST(EventQueue, InterleavedAcrossTimesStaysSorted) {
  EventQueue q;
  std::vector<double> order;
  // Deterministic scatter of timestamps, popping half-way through.
  for (int i = 0; i < 100; ++i) {
    q.push(seconds(static_cast<double>((i * 37) % 50)),
           [&order, i] { order.push_back(static_cast<double>((i * 37) % 50)); });
    if (i % 3 == 2) q.pop().fn();
  }
  while (!q.empty()) q.pop().fn();
  // Events popped after a given pop may predate it (they were pushed
  // later), so global sortedness is not expected — but re-running the
  // remaining queue alone must be sorted.  Check the tail drain instead:
  // drain a fresh queue fully and require sorted order.
  EventQueue q2;
  std::vector<double> drained;
  for (int i = 0; i < 100; ++i) {
    const double t = static_cast<double>((i * 37) % 50);
    q2.push(seconds(t), [&drained, t] { drained.push_back(t); });
  }
  while (!q2.empty()) q2.pop().fn();
  EXPECT_TRUE(std::is_sorted(drained.begin(), drained.end()));
  EXPECT_EQ(drained.size(), 100U);
}

TEST(EventQueue, RejectsNonFiniteAndNegativeTimes) {
  EventQueue q;
  EXPECT_THROW(q.push(seconds(std::numeric_limits<double>::quiet_NaN()), [] {}),
               ContractError);
  EXPECT_THROW(q.push(seconds(-std::numeric_limits<double>::infinity()), [] {}),
               ContractError);
  EXPECT_THROW(q.push(seconds(std::numeric_limits<double>::infinity()), [] {}),
               ContractError);
  EXPECT_THROW(q.push(seconds(-1.0), [] {}), ContractError);
  EXPECT_TRUE(q.empty());
  q.push(seconds(0.0), [] {});  // Zero is a valid (start-of-run) time.
  EXPECT_EQ(q.size(), 1U);
}

TEST(EventQueue, EngineRejectsSchedulingBeforeNow) {
  Engine e;
  e.schedule_at(seconds(1.0), [&] {
    EXPECT_THROW(e.schedule_at(seconds(std::nan("")), [] {}), ContractError);
    EXPECT_THROW(e.schedule_at(seconds(0.5), [] {}), ContractError);
  });
  e.run();
}

TEST(EventQueue, BatchSubmissionMatchesIndividualPushOrder) {
  std::vector<int> individual;
  {
    EventQueue q;
    q.push(seconds(1.0), [&] { individual.push_back(10); });
    q.push(seconds(0.5), [&] { individual.push_back(5); });
    q.push(seconds(1.0), [&] { individual.push_back(11); });
    while (!q.empty()) q.pop().fn();
  }
  std::vector<int> batched;
  {
    EventQueue q;
    EventBatch b;
    b.add(seconds(1.0), [&] { batched.push_back(10); });
    b.add(seconds(0.5), [&] { batched.push_back(5); });
    b.add(seconds(1.0), [&] { batched.push_back(11); });
    q.push_batch(b);
    EXPECT_TRUE(b.empty());  // Drained, reusable.
    while (!q.empty()) q.pop().fn();
  }
  EXPECT_EQ(individual, (std::vector<int>{5, 10, 11}));
  EXPECT_EQ(batched, individual);
}

// --- unified finite-time guard across every insertion path ---------------
// validate_event_time is the single gate: each path must reject a NaN /
// infinite / negative time at its *own* entry point, so the bug is
// reported where the time was produced — not after the batch has been
// carried across a wake or crash-arm path.

TEST(EventQueue, BatchAddRejectsBadTimesAtInsertion) {
  EventBatch b;
  EXPECT_THROW(b.add(seconds(std::numeric_limits<double>::quiet_NaN()), [] {}),
               ContractError);
  EXPECT_THROW(b.add(seconds(std::numeric_limits<double>::infinity()), [] {}),
               ContractError);
  EXPECT_THROW(b.add(seconds(-1.0), [] {}), ContractError);
  EXPECT_TRUE(b.empty());  // Nothing half-inserted.
  b.add(seconds(0.0), [] {});
  EXPECT_EQ(b.size(), 1U);
}

TEST(EventQueue, ScheduleAtRejectsNonFiniteTimes) {
  Engine e;
  EXPECT_THROW(e.schedule_at(seconds(std::numeric_limits<double>::quiet_NaN()),
                             [] {}),
               ContractError);
  EXPECT_THROW(e.schedule_at(seconds(std::numeric_limits<double>::infinity()),
                             [] {}),
               ContractError);
  EXPECT_THROW(e.schedule_at(seconds(-1.0), [] {}), ContractError);
}

TEST(EventQueue, ScheduleAfterRejectsNonFiniteDelays) {
  Engine e;
  EXPECT_THROW(
      e.schedule_after(seconds(std::numeric_limits<double>::quiet_NaN()),
                       [] {}),
      ContractError);
  EXPECT_THROW(e.schedule_after(
                   seconds(std::numeric_limits<double>::infinity()), [] {}),
               ContractError);
  EXPECT_THROW(e.schedule_after(seconds(-1.0), [] {}), ContractError);
}

TEST(EventQueue, PushBatchRevalidatesMovedBatches) {
  // Even a batch built elsewhere is re-checked at submission (the queue
  // cannot trust every producer forever) — and a valid one drains.
  Engine e;
  EventBatch b;
  b.add(seconds(1.0), [] {});
  e.schedule_batch(b);
  EXPECT_TRUE(b.empty());
  e.run();
}

TEST(EventQueue, PoolSlotsAreReusedUnderChurn) {
  EventQueue q;
  for (int i = 0; i < 64; ++i) q.push(seconds(i), [] {});
  const std::size_t warm = q.pool_capacity();
  for (int i = 0; i < 1000; ++i) {
    EventQueue::Popped p = q.pop();
    q.push(p.time + seconds(1.0), [] {});
  }
  EXPECT_EQ(q.pool_capacity(), warm);  // Steady-state churn: no growth.
}

// --- EventFn: inline vs heap capture paths ------------------------------

TEST(EventFn, SmallCapturesStayInline) {
  int hits = 0;
  EventFn f{[&hits] { ++hits; }};
  EXPECT_TRUE(static_cast<bool>(f));
  EXPECT_FALSE(f.on_heap());
  f();
  EXPECT_EQ(hits, 1);
}

TEST(EventFn, OversizedCapturesFallBackToHeapAndStillRun) {
  struct Big {
    double payload[12] = {};  // 96 bytes > kInlineCapacity.
  };
  Big big;
  big.payload[7] = 42.0;
  double seen = 0.0;
  EventFn f{[big, &seen] { seen = big.payload[7]; }};
  EXPECT_TRUE(f.on_heap());
  f();
  EXPECT_DOUBLE_EQ(seen, 42.0);
}

TEST(EventFn, MovePreservesCaptureAndEmptiesSource) {
  auto flag = std::make_shared<int>(0);
  EventFn a{[flag] { ++*flag; }};
  EventFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(*flag, 1);
  // Captured state is owned: the shared_ptr count reflects one live copy.
  EXPECT_EQ(flag.use_count(), 2);
  EventFn c;
  c = std::move(b);
  c();
  EXPECT_EQ(*flag, 2);
}

TEST(EventFn, InvokingEmptyFnIsAContractError) {
  EventFn f;
  EXPECT_THROW(f(), ContractError);
}

TEST(EventFn, DestroysCaptureExactlyOnce) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  {
    EventFn f{[token] { (void)*token; }};
    token.reset();
    EXPECT_FALSE(watch.expired());  // Capture keeps it alive.
    EventFn g = std::move(f);
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());  // Both shells destroyed; freed once.
}

TEST(EventFn, ExceptionsPropagateOutOfInvocation) {
  EventFn f{[] { throw std::runtime_error("boom"); }};
  EXPECT_THROW(f(), std::runtime_error);
  // The callable survives a throwing invocation (the fault layer's crash
  // events throw NodeFailure through here).
  EXPECT_TRUE(static_cast<bool>(f));
}

}  // namespace
}  // namespace gearsim::sim
