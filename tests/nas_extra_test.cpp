// Tests for FT and IS — the benchmarks the paper excludes — verifying
// that the stated exclusion pathologies reproduce and that FT behaves as
// a normal workload on our substrate.
#include <gtest/gtest.h>

#include "cluster/experiment.hpp"
#include "model/tradeoff.hpp"
#include "workloads/nas_extra.hpp"
#include "workloads/registry.hpp"

namespace gearsim::workloads {
namespace {

cluster::ExperimentRunner athlon() {
  return cluster::ExperimentRunner(cluster::athlon_cluster());
}

// --- IS class B: pathology (1), no parallel speedup -----------------------------

TEST(NasIs, ClassBHasNoUsefulSpeedup) {
  auto runner = athlon();
  const NasIs is_b;
  const Seconds t1 = runner.run(is_b, 1, 0).wall;
  double best = 0.0;
  for (int n : {2, 4, 8}) {
    best = std::max(best, t1 / runner.run(is_b, n, 0).wall);
  }
  EXPECT_LT(best, 1.4);  // "too small to get any parallel speedup".
}

TEST(NasIs, ClassBEventuallySlowsDown) {
  // The fixed-size bucket reduction grows with node count while compute
  // shrinks: by 8 nodes the run is slower than sequential.
  auto runner = athlon();
  const NasIs is_b;
  EXPECT_GT(runner.run(is_b, 8, 0).wall.value(),
            runner.run(is_b, 1, 0).wall.value());
}

// --- IS class C: pathology (2), thrashing below the memory floor -----------------

TEST(NasIs, ClassCMemoryFloor) {
  NasIs::Params p;
  p.cls = NasIs::Class::kC;
  const NasIs is_c(p);
  EXPECT_FALSE(is_c.fits_in_memory(1));
  EXPECT_FALSE(is_c.fits_in_memory(2));
  EXPECT_TRUE(is_c.fits_in_memory(4));
  EXPECT_TRUE(is_c.fits_in_memory(8));
  EXPECT_TRUE(NasIs().fits_in_memory(1));  // Class B always fits.
}

TEST(NasIs, ClassCThrashCliffIsSuperlinear) {
  auto runner = athlon();
  NasIs::Params p;
  p.cls = NasIs::Class::kC;
  const NasIs is_c(p);
  const Seconds t1 = runner.run(is_c, 1, 0).wall;
  const Seconds t2 = runner.run(is_c, 2, 0).wall;
  const Seconds t4 = runner.run(is_c, 4, 0).wall;
  // Crossing the memory floor (2 -> 4 nodes) is worth far more than a
  // doubling; within the thrashing regime scaling is ordinary.
  EXPECT_GT(t2 / t4, 4.0);
  EXPECT_LT(t1 / t2, 2.5);
  EXPECT_GT(t1 / t4, 6.0);  // The "meaningless comparison" cliff.
}

TEST(NasIs, ThrashFactorControlsTheCliff) {
  auto runner = athlon();
  NasIs::Params p;
  p.cls = NasIs::Class::kC;
  p.thrash_factor = 1.0;  // Paging disabled: no cliff.
  const NasIs no_thrash(p);
  const Seconds t2 = runner.run(no_thrash, 2, 0).wall;
  const Seconds t4 = runner.run(no_thrash, 4, 0).wall;
  EXPECT_LT(t2 / t4, 2.5);
}

TEST(NasIs, ThrashingRunsDrawMemoryBoundPower) {
  // Paging multiplies memory references, so the 1-node class-C run is
  // extremely memory-bound: near-vertical energy-time curve.
  auto runner = athlon();
  NasIs::Params p;
  p.cls = NasIs::Class::kC;
  const NasIs is_c(p);
  const auto rel = model::relative_to_fastest(
      model::curve_from_runs(runner.gear_sweep(is_c, 1)));
  EXPECT_LT(rel[4].time_delta, 0.04);    // Gear 5 barely slower...
  EXPECT_LT(rel[4].energy_delta, -0.18); // ...much cheaper.
}

// --- FT ----------------------------------------------------------------------------

TEST(NasFt, RunsAndScalesReasonably) {
  auto runner = athlon();
  const NasFt ft;
  const Seconds t1 = runner.run(ft, 1, 0).wall;
  const Seconds t4 = runner.run(ft, 4, 0).wall;
  const double speedup = t1 / t4;
  EXPECT_GT(speedup, 2.0);
  EXPECT_LT(speedup, 4.0);  // Transpose-bound: clearly sub-linear.
}

TEST(NasFt, TransposeVolumeIsNodeCountInvariant) {
  // The global transpose moves the whole dataset regardless of n; the
  // wire carries the off-diagonal share, total * (1 - 1/n).
  auto runner = athlon();
  const NasFt ft;
  const cluster::RunResult r2 = runner.run(ft, 2, 0);
  const cluster::RunResult r8 = runner.run(ft, 8, 0);
  const double dataset2 = static_cast<double>(r2.net_bytes) / (1.0 - 1.0 / 2);
  const double dataset8 = static_cast<double>(r8.net_bytes) / (1.0 - 1.0 / 8);
  EXPECT_NEAR(dataset8 / dataset2, 1.0, 0.05);
}

TEST(NasFt, SlowdownBoundHolds) {
  auto runner = athlon();
  const NasFt ft;
  const auto runs = runner.gear_sweep(ft, 4);
  for (std::size_t g = 1; g < runs.size(); ++g) {
    const double ratio = runs[g].wall / runs[g - 1].wall;
    EXPECT_GE(ratio, 1.0 - 0.015);
    EXPECT_LE(ratio,
              runner.config().gears.cycle_time_ratio(g) /
                      runner.config().gears.cycle_time_ratio(g - 1) +
                  1e-9);
  }
}

// --- sampled metering (the paper's rig, end to end) --------------------------------

TEST(SampledMetering, MatchesExactAccountingWithinOnePercent) {
  cluster::ClusterConfig config = cluster::athlon_cluster();
  config.sample_power = true;
  cluster::ExperimentRunner runner(config);
  const auto cg = workloads::make_workload("CG");
  const cluster::RunResult r = runner.run(*cg, 4, 2);
  ASSERT_TRUE(r.sampled_energy.has_value());
  EXPECT_NEAR(*r.sampled_energy / r.energy, 1.0, 0.01);
}

TEST(SampledMetering, NoiseIsToleratedByIntegration) {
  cluster::ClusterConfig config = cluster::athlon_cluster();
  config.sample_power = true;
  config.multimeter.noise_stddev_watts = 3.0;
  cluster::ExperimentRunner runner(config);
  const cluster::RunResult r = runner.run(*workloads::make_workload("MG"), 2, 0);
  ASSERT_TRUE(r.sampled_energy.has_value());
  EXPECT_NEAR(*r.sampled_energy / r.energy, 1.0, 0.02);
}

TEST(SampledMetering, OffByDefault) {
  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  const cluster::RunResult r = runner.run(*workloads::make_workload("EP"), 1, 0);
  EXPECT_FALSE(r.sampled_energy.has_value());
}

}  // namespace
}  // namespace gearsim::workloads
