// Unit tests for the conservative parallel DES engine: time-window
// semantics, the cross-partition mailbox contract, determinism across
// thread counts, the conservative-bound enforcement, deadlock detection,
// and teardown lifetimes.  Cluster-level serial-vs-parallel equivalence
// lives in cluster_test.cpp (ParallelEngineMatrix).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/parallel_engine.hpp"
#include "util/assert.hpp"

namespace gearsim::sim {
namespace {

constexpr Seconds kLookahead = milliseconds(1.0);

TEST(ParallelEngine, ValidatesConstruction) {
  EXPECT_THROW(ParallelEngine(0, kLookahead), ContractError);
  EXPECT_THROW(ParallelEngine(2, Seconds{}), ContractError);
  EXPECT_THROW(ParallelEngine(2, seconds(-1.0)), ContractError);
  const ParallelEngine group(3, kLookahead, 2);
  EXPECT_EQ(group.partitions(), 3U);
  EXPECT_EQ(group.threads(), 2);
  EXPECT_DOUBLE_EQ(group.lookahead().value(), kLookahead.value());
}

TEST(ParallelEngine, ThreadsClampToPartitions) {
  const ParallelEngine group(2, kLookahead, 16);
  EXPECT_EQ(group.threads(), 2);
  const ParallelEngine defaulted(3, kLookahead, 0);
  EXPECT_EQ(defaulted.threads(), 3);
}

TEST(ParallelEngine, RunsPartitionLocalEventsInTimeOrder) {
  ParallelEngine group(2, kLookahead);
  std::vector<double> seen;  // Partition 0 only — single-writer.
  group.partition(0).schedule_at(seconds(2.0), [&] { seen.push_back(2.0); });
  group.partition(0).schedule_at(seconds(1.0), [&] { seen.push_back(1.0); });
  group.partition(1).schedule_at(seconds(1.5), [] {});
  group.run();
  EXPECT_EQ(seen, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(group.events_executed(), 3U);
  EXPECT_GE(group.windows(), 1U);
}

TEST(ParallelEngine, CrossPartitionPostDeliversAtRequestedTime) {
  ParallelEngine group(2, kLookahead, 1);
  Engine& p0 = group.partition(0);
  double delivered_at = -1.0;
  Engine* p1 = &group.partition(1);
  p0.schedule_at(seconds(1.0), [&, p1] {
    group.post(p0, 1, seconds(1.0) + kLookahead,
               [&, p1] { delivered_at = p1->now().value(); });
  });
  group.run();
  EXPECT_DOUBLE_EQ(delivered_at, (seconds(1.0) + kLookahead).value());
}

TEST(ParallelEngine, RejectsPostBelowConservativeHorizon) {
  ParallelEngine group(2, kLookahead, 1);
  Engine& p0 = group.partition(0);
  bool threw = false;
  p0.schedule_at(seconds(1.0), [&] {
    // The window horizon is >= 1.0 + lookahead once this event runs, so a
    // post at the current time violates the conservative bound.
    try {
      group.post(p0, 1, seconds(1.0), [] {});
    } catch (const ContractError&) {
      threw = true;
    }
  });
  group.run();
  EXPECT_TRUE(threw);
}

TEST(ParallelEngine, PostValidatesPartitions) {
  ParallelEngine group(2, kLookahead);
  Engine foreign;
  EXPECT_THROW(group.post(foreign, 0, seconds(1.0), [] {}), ContractError);
  EXPECT_THROW(group.post_at_barrier(2, seconds(1.0), [] {}), ContractError);
}

/// Ping-pong chain across partitions: each hop re-posts to the other
/// partition one lookahead later.  Deterministic event population for
/// any thread count.
std::uint64_t run_ping_pong(int threads, std::uint64_t* events) {
  ParallelEngine group(2, kLookahead, threads);
  // shared_ptr so the recursive callable survives being moved between
  // mailbox lanes and queues.
  struct Hop {
    ParallelEngine* group;
    int remaining;
    std::function<void(std::size_t, Seconds)> next;
  };
  auto hop = std::make_shared<Hop>();
  hop->group = &group;
  hop->remaining = 64;
  hop->next = [hop](std::size_t at, Seconds t) {
    if (hop->remaining-- <= 0) return;
    const std::size_t to = 1 - at;
    hop->group->post(hop->group->partition(at), to, t + kLookahead,
                     [hop, to, t] { hop->next(to, t + kLookahead); });
  };
  group.partition(0).schedule_at(seconds(0.0),
                                 [hop] { hop->next(0, seconds(0.0)); });
  group.run();
  hop->next = nullptr;  // Break the hop->next->hop shared_ptr cycle.
  if (events != nullptr) *events = group.events_executed();
  return group.event_set_hash();
}

TEST(ParallelEngine, PingPongIsDeterministicAcrossThreadCounts) {
  std::uint64_t events1 = 0;
  std::uint64_t events2 = 0;
  const std::uint64_t h1 = run_ping_pong(1, &events1);
  const std::uint64_t h2 = run_ping_pong(2, &events2);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(events1, events2);
  EXPECT_EQ(events1, 65U);  // Seed event + 64 hops.
}

/// 256 actors over 4 partitions on 4 threads, each stepping a private
/// chain and posting to the next partition every 8th step; the single
/// partition run is the serial oracle.  The order-independent set hash
/// must match exactly.
std::uint64_t run_actor_grid(std::size_t partitions, int threads,
                             std::uint64_t* events) {
  constexpr int kActors = 256;
  constexpr int kSteps = 20;
  struct Actor {
    ParallelEngine* group = nullptr;
    Engine* eng = nullptr;
    std::size_t partition = 0;
    int index = 0;
    int remaining = kSteps;
    void fire(Seconds now) {
      if (index % 8 == 0) {
        group->post(*eng, (partition + 1) % group->partitions(),
                    now + kLookahead, [] {});
      }
      if (--remaining <= 0) return;
      const Seconds next = now + milliseconds(0.25);
      eng->schedule_at(next, [this, next] { fire(next); });
    }
  };
  ParallelEngine group(partitions, kLookahead, threads);
  std::vector<Actor> actors(kActors);
  for (int a = 0; a < kActors; ++a) {
    const std::size_t p =
        static_cast<std::size_t>(a) * partitions / kActors;
    Actor& actor = actors[static_cast<std::size_t>(a)];
    actor = Actor{&group, &group.partition(p), p, a, kSteps};
    const Seconds start = microseconds(static_cast<double>(a % 7));
    group.partition(p).schedule_at(start,
                                   [&actor, start] { actor.fire(start); });
  }
  group.run();
  if (events != nullptr) *events = group.events_executed();
  return group.event_set_hash();
}

TEST(ParallelEngine, ActorGridMatchesSerialOracle) {
  std::uint64_t serial_events = 0;
  std::uint64_t parallel_events = 0;
  const std::uint64_t serial = run_actor_grid(1, 1, &serial_events);
  const std::uint64_t parallel = run_actor_grid(4, 4, &parallel_events);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial_events, parallel_events);
  EXPECT_NE(serial, 0U);
}

TEST(ParallelEngine, ErrorSurfacesFromLowestPartition) {
  for (const int threads : {1, 2}) {
    ParallelEngine group(3, kLookahead, threads);
    group.partition(2).schedule_at(seconds(1.0), [] {
      throw std::runtime_error("partition 2 boom");
    });
    group.partition(1).schedule_at(seconds(1.0), [] {
      throw std::runtime_error("partition 1 boom");
    });
    try {
      group.run();
      FAIL() << "expected the partition error to propagate";
    } catch (const std::runtime_error& e) {
      // Same-window errors surface lowest-partition-first for any thread
      // count, so the caller-visible failure is deterministic.
      EXPECT_STREQ(e.what(), "partition 1 boom");
    }
  }
}

TEST(ParallelEngine, DetectsCrossPartitionDeadlock) {
  ParallelEngine group(2, kLookahead);
  group.partition(0).spawn("stuck", [](Process& p) { p.block(); });
  group.partition(1).schedule_at(seconds(1.0), [] {});
  EXPECT_THROW(group.run(), SimulationError);
}

TEST(ParallelEngine, TerminateProcessesDropsMailboxPosts) {
  // A mailbox post whose capture owns heap state must be destroyed by
  // terminate_processes (not leaked, not dangling) even though it was
  // never delivered.  Under ASAN this is the regression test for the
  // teardown lifetime sweep.
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  {
    ParallelEngine group(2, kLookahead);
    group.partition(0).spawn("parked", [](Process& p) { p.block(); });
    group.post_at_barrier(1, seconds(10.0), [token] { (void)*token; });
    token.reset();
    EXPECT_FALSE(watch.expired());  // The lane holds the callable.
    group.terminate_processes();
    EXPECT_TRUE(watch.expired());  // Destroyed with referents alive.
    group.terminate_processes();   // Idempotent.
  }
}

TEST(ParallelEngine, DestructorTerminatesBlockedProcesses) {
  // Destruction with a parked process and an undelivered mailbox post
  // must unwind cleanly (the destructor calls terminate_processes).
  ParallelEngine group(2, kLookahead);
  group.partition(0).spawn("parked", [](Process& p) { p.block(); });
  group.post_at_barrier(0, seconds(5.0), [] {});
}

}  // namespace
}  // namespace gearsim::sim
