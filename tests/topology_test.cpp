// Unit tests for routing topologies and the fair-share contention model:
// spec parsing, fat-tree/torus hop counts and path symmetry, per-link
// bandwidth sharing, lookahead soundness, and cluster/cache wiring.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "cluster/config.hpp"
#include "exec/cache_key.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "util/assert.hpp"

namespace gearsim::net {
namespace {

NetworkParams quiet() {
  NetworkParams p;
  p.latency = microseconds(100.0);
  p.link_bandwidth = 10e6;  // 10 MB/s for round numbers.
  p.backplane_bandwidth = 80e6;
  return p;
}

NetworkParams quiet_with(const std::string& spec) {
  NetworkParams p = quiet();
  p.topology = parse_topology(spec);
  return p;
}

std::vector<LinkId> path_of(const Topology& topo, std::size_t src,
                            std::size_t dst) {
  std::vector<LinkId> path;
  topo.route(src, dst, &path);
  return path;
}

// ---------------------------------------------------------------------------
// Spec grammar.

TEST(TopologySpec, FlatParsesAndRendersCanonically) {
  const TopologyParams p = parse_topology("flat");
  EXPECT_TRUE(p.flat());
  EXPECT_EQ(to_spec(p), "flat");
  EXPECT_EQ(to_spec(TopologyParams{}), "flat");
}

TEST(TopologySpec, FatTreeRoundTrips) {
  const TopologyParams p = parse_topology("fat-tree:16,16:1,2:1,4");
  EXPECT_EQ(p.kind, TopologyKind::kFatTree);
  EXPECT_EQ(p.down, (std::vector<int>{16, 16}));
  EXPECT_EQ(p.up, (std::vector<int>{1, 2}));
  EXPECT_EQ(p.parallel, (std::vector<int>{1, 4}));
  // The canonical spec always pins hop_us, and parses back to itself.
  const std::string canon = to_spec(p);
  EXPECT_EQ(canon, "fat-tree:16,16:1,2:1,4:hop_us=1");
  EXPECT_EQ(to_spec(parse_topology(canon)), canon);
}

TEST(TopologySpec, TorusRoundTripsWithOptions) {
  const TopologyParams p = parse_topology("torus:8x8x4:hop_us=0.5");
  EXPECT_EQ(p.kind, TopologyKind::kTorus);
  EXPECT_EQ(p.dims, (std::vector<int>{8, 8, 4}));
  EXPECT_NEAR(p.hop_latency.value(), 0.5e-6, 1e-15);
  const std::string canon = to_spec(p);
  EXPECT_EQ(canon, "torus:8x8x4:hop_us=0.5");
  EXPECT_EQ(to_spec(parse_topology(canon)), canon);
}

TEST(TopologySpec, TrunkBandwidthRoundTrips) {
  const std::string canon =
      to_spec(parse_topology("fat-tree:4,4:1,1:1,1:trunk_bw=20000000"));
  const TopologyParams p = parse_topology(canon);
  EXPECT_EQ(p.trunk_bandwidth, 20000000.0);
  EXPECT_EQ(to_spec(p), canon);
}

TEST(TopologySpec, MalformedSpecsThrow) {
  EXPECT_THROW(parse_topology("ring:4"), ContractError);
  EXPECT_THROW(parse_topology("flat:3"), ContractError);
  EXPECT_THROW(parse_topology("fat-tree:2,2"), ContractError);
  EXPECT_THROW(parse_topology("fat-tree:2,2:1:1,1"), ContractError);
  EXPECT_THROW(parse_topology("fat-tree:2,0:1,1:1,1"), ContractError);
  EXPECT_THROW(parse_topology("torus:"), ContractError);
  EXPECT_THROW(parse_topology("torus:0x4"), ContractError);
  EXPECT_THROW(parse_topology("torus:4x4:bogus=1"), ContractError);
  EXPECT_THROW(parse_topology("torus:4x4:hop_us=-1"), ContractError);
  EXPECT_THROW(parse_topology("torus:4x4:hop_us"), ContractError);
}

TEST(TopologySpec, MakeRejectsShapesSmallerThanTheCluster) {
  EXPECT_THROW(Topology::make(parse_topology("fat-tree:2:1:1"), 4, 10e6),
               ContractError);
  EXPECT_THROW(Topology::make(parse_topology("torus:2x2"), 8, 10e6),
               ContractError);
  EXPECT_EQ(Topology::make(parse_topology("flat"), 4, 10e6), nullptr);
}

// ---------------------------------------------------------------------------
// Routing: hop counts, symmetry, determinism.

TEST(TopologyRouting, FatTreeHopCounts) {
  // 4 hosts under two 2-ary levels: siblings cross one switch (2 links),
  // cousins climb to the root and back down (4 links).
  const auto topo = Topology::make(parse_topology("fat-tree:2,2:1,1:1,1"), 4,
                                   10e6);
  ASSERT_NE(topo, nullptr);
  EXPECT_EQ(topo->num_hosts(), 4u);
  EXPECT_EQ(path_of(*topo, 0, 1).size(), 2u);
  EXPECT_EQ(path_of(*topo, 0, 2).size(), 4u);
  EXPECT_EQ(path_of(*topo, 1, 3).size(), 4u);
  EXPECT_EQ(topo->min_path_links(), 2u);
}

TEST(TopologyRouting, TorusHopCountsTakeTheShorterWrap) {
  const auto topo = Topology::make(parse_topology("torus:4x4"), 16, 10e6);
  ASSERT_NE(topo, nullptr);
  EXPECT_EQ(topo->num_hosts(), 16u);
  EXPECT_EQ(topo->link_count(), 64u);  // 16 nodes x 2 dims x 2 directions.
  // (0,0) -> (2,1): two x-steps plus one y-step.
  EXPECT_EQ(path_of(*topo, 0, 6).size(), 3u);
  // (0,0) -> (3,0): the backward wrap is one hop, not three forward.
  EXPECT_EQ(path_of(*topo, 0, 3).size(), 1u);
  EXPECT_EQ(topo->min_path_links(), 1u);
}

TEST(TopologyRouting, PathsAreSymmetricInLengthAndDirected) {
  // route(d, s) retraces route(s, d) on the opposite-direction links:
  // same length, zero shared directed link ids.
  for (const char* spec : {"fat-tree:2,2:1,1:1,1", "fat-tree:4,4:1,2:1,2",
                           "torus:4x4", "torus:3x3x3"}) {
    SCOPED_TRACE(spec);
    const auto topo = Topology::make(parse_topology(spec), 0, 10e6);
    const std::size_t n = topo->num_hosts();
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t d = 0; d < n; ++d) {
        if (s == d) continue;
        const auto fwd = path_of(*topo, s, d);
        const auto rev = path_of(*topo, d, s);
        ASSERT_FALSE(fwd.empty());
        ASSERT_EQ(fwd.size(), rev.size());
        std::set<LinkId> links(fwd.begin(), fwd.end());
        EXPECT_EQ(links.size(), fwd.size());  // No link crossed twice.
        for (const LinkId link : rev) {
          EXPECT_EQ(links.count(link), 0u);
          EXPECT_LT(link, topo->link_count());
          EXPECT_GT(topo->link_capacity(link), 0.0);
        }
      }
    }
  }
}

TEST(TopologyRouting, RoutesArePureFunctionsOfEndpoints) {
  const auto topo =
      Topology::make(parse_topology("fat-tree:4,4:1,2:1,2"), 16, 10e6);
  for (std::size_t s = 0; s < 16; ++s) {
    for (std::size_t d = 0; d < 16; ++d) {
      if (s == d) continue;
      EXPECT_EQ(path_of(*topo, s, d), path_of(*topo, s, d));
    }
  }
}

// ---------------------------------------------------------------------------
// Fair-share contention.

TEST(TopologyContention, UncontendedFatTreeTransferPaysHopLatency) {
  Network net(quiet_with("fat-tree:2,2:1,1:1,1"), 4);
  ASSERT_NE(net.topology(), nullptr);
  // 1 MB at 10 MB/s through 4 links: 0.1 s + 100 us wire + 3 x 1 us hops.
  const Seconds t = net.transfer(0, 2, 1'000'000, seconds(0.0));
  EXPECT_NEAR(t.value(), 0.100103, 1e-9);
  // Siblings cross one switch only.
  const Seconds s = net.transfer(1, 0, 1'000'000, seconds(10.0));
  EXPECT_NEAR(s.value(), 10.100101, 1e-9);
}

TEST(TopologyContention, SharedUplinkHalvesTheRate) {
  Network net(quiet_with("fat-tree:2,2:1,1:1,1"), 4);
  // A: 0 -> 2 commits the single root uplink for [0, 0.1].
  const Seconds a = net.transfer(0, 2, 1'000'000, seconds(0.0));
  EXPECT_NEAR(a.value(), 0.100103, 1e-9);
  // B: 1 -> 3 shares that uplink: 5 MB/s while A runs (0.5 MB done at
  // t=0.1), then the full 10 MB/s for the rest -> finishes at 0.15.
  const Seconds b = net.transfer(1, 3, 1'000'000, seconds(0.0));
  EXPECT_NEAR(b.value(), 0.150103, 1e-9);
}

TEST(TopologyContention, TorusSharesTheFirstCommonLink) {
  Network net(quiet_with("torus:4x4"), 16);
  // 0 -> 1 occupies node 0's +x link for [0, 0.1].
  const Seconds a = net.transfer(0, 1, 1'000'000, seconds(0.0));
  EXPECT_NEAR(a.value(), 0.1001, 1e-9);
  // 0 -> 2 crosses that same link first: half rate until 0.1, full after.
  const Seconds b = net.transfer(0, 2, 1'000'000, seconds(0.0));
  EXPECT_NEAR(b.value(), 0.150101, 1e-9);
}

TEST(TopologyContention, CommittedArrivalsAreNeverRevised) {
  // The first flow's arrival is returned before the second is injected;
  // injecting the second must not change what the first reported, and
  // replays of the same call sequence must reproduce both bytes exactly.
  Network once(quiet_with("fat-tree:2,2:1,1:1,1"), 4);
  const Seconds a1 = once.transfer(0, 2, 1'000'000, seconds(0.0));
  const Seconds b1 = once.transfer(1, 3, 1'000'000, seconds(0.0));

  Network again(quiet_with("fat-tree:2,2:1,1:1,1"), 4);
  const Seconds a2 = again.transfer(0, 2, 1'000'000, seconds(0.0));
  const Seconds b2 = again.transfer(1, 3, 1'000'000, seconds(0.0));
  EXPECT_EQ(a1.value(), a2.value());
  EXPECT_EQ(b1.value(), b2.value());
}

TEST(TopologyContention, TransferSequenceIsDeterministic) {
  // Two networks fed the identical mixed sequence return bit-identical
  // arrivals — the property the parallel engine's barrier replay needs.
  const auto run = [](Network& net) {
    std::vector<double> arrivals;
    double t = 0.0;
    for (int i = 0; i < 64; ++i) {
      const auto src = static_cast<std::size_t>(i % 16);
      const auto dst = static_cast<std::size_t>((i * 7 + 3) % 16);
      if (src == dst) continue;
      arrivals.push_back(
          net.transfer(src, dst, 100'000 + 1'000 * i, seconds(t)).value());
      t += 0.001;
    }
    return arrivals;
  };
  for (const char* spec : {"fat-tree:4,4:1,2:1,2", "torus:4x4"}) {
    SCOPED_TRACE(spec);
    Network x(quiet_with(spec), 16);
    Network y(quiet_with(spec), 16);
    EXPECT_EQ(run(x), run(y));
  }
}

TEST(TopologyContention, TrunkBandwidthCapsSpineLinks) {
  // A 2 MB/s spine under 10 MB/s NICs: the cross-subtree transfer is
  // spine-bound (0.5 s for 1 MB), the sibling transfer is NIC-bound.
  Network net(quiet_with("fat-tree:2,2:1,1:1,1:trunk_bw=2000000"), 4);
  const Seconds cross = net.transfer(0, 2, 1'000'000, seconds(0.0));
  EXPECT_NEAR(cross.value(), 0.500103, 1e-9);
  const Seconds sibling = net.transfer(1, 0, 1'000'000, seconds(0.0));
  EXPECT_NEAR(sibling.value(), 0.100101, 1e-9);
}

// ---------------------------------------------------------------------------
// Lookahead.

TEST(TopologyLookahead, EqualsTrueMinimumRoutedPathLatency) {
  for (const char* spec : {"fat-tree:2,2:1,1:1,1", "fat-tree:4,4:1,2:1,2",
                           "torus:4x4", "torus:3x3x3",
                           "torus:4x4:hop_us=7.5"}) {
    SCOPED_TRACE(spec);
    NetworkParams params = quiet_with(spec);
    const auto shape = Topology::make(params.topology, 0, 10e6);
    const std::size_t n = shape->num_hosts();
    Network net(params, n);
    ASSERT_NE(net.topology(), nullptr);
    // Brute force over every ordered pair.
    std::size_t min_links = std::numeric_limits<std::size_t>::max();
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t d = 0; d < n; ++d) {
        if (s != d) min_links = std::min(min_links, path_of(*shape, s, d).size());
      }
    }
    const Seconds expected =
        params.latency +
        params.topology.hop_latency * static_cast<double>(min_links - 1);
    EXPECT_EQ(net.conservative_lookahead().value(), expected.value());
  }
}

TEST(TopologyLookahead, EveryArrivalClearsTheBound) {
  Network net(quiet_with("torus:4x4"), 16);
  const Seconds bound = net.conservative_lookahead();
  ASSERT_GT(bound.value(), 0.0);
  for (int i = 0; i < 48; ++i) {
    const auto src = static_cast<std::size_t>(i % 16);
    const auto dst = static_cast<std::size_t>((i * 5 + 1) % 16);
    if (src == dst) continue;
    const Seconds now = seconds(0.01 * i);
    const Seconds arrival = net.transfer(src, dst, 10'000 * i, now);
    EXPECT_GE(arrival.value(), (now + bound).value());
  }
}

TEST(TopologyLookahead, FlatModeIsUnchangedAndJitterStillForfeits) {
  Network flat(quiet(), 4);
  EXPECT_EQ(flat.topology(), nullptr);
  EXPECT_EQ(flat.conservative_lookahead().value(), quiet().latency.value());

  NetworkParams jittered = quiet_with("torus:4x4");
  jittered.latency_jitter = 0.05;
  Network net(jittered, 16);
  EXPECT_EQ(net.conservative_lookahead().value(), 0.0);
}

// ---------------------------------------------------------------------------
// Cluster / cache wiring.

TEST(TopologyWiring, InstallTopologyLiftsMaxNodesToShapeCapacity) {
  cluster::ClusterConfig config = cluster::athlon_cluster();
  ASSERT_EQ(config.max_nodes, 10);
  cluster::install_topology(&config,
                            parse_topology("fat-tree:16,16:1,2:1,4"));
  EXPECT_EQ(config.max_nodes, 256);
  EXPECT_EQ(to_spec(config.network.topology),
            "fat-tree:16,16:1,2:1,4:hop_us=1");

  // A shape smaller than the cluster leaves max_nodes alone (runs that
  // exceed its seats fail at Network construction, not here).
  cluster::ClusterConfig small = cluster::athlon_cluster();
  cluster::install_topology(&small, parse_topology("torus:4x4"));
  EXPECT_EQ(small.max_nodes, 16);

  cluster::ClusterConfig flat = cluster::athlon_cluster();
  cluster::install_topology(&flat, parse_topology("flat"));
  EXPECT_EQ(flat.max_nodes, 10);
  EXPECT_TRUE(flat.network.topology.flat());
}

TEST(TopologyWiring, CanonicalConfigCarriesTheTopologySpec) {
  cluster::ClusterConfig config = cluster::athlon_cluster();
  const std::string flat_key = exec::canonical_config(config);
  EXPECT_NE(flat_key.find("topology=flat"), std::string::npos);

  cluster::install_topology(&config, parse_topology("torus:8x8x4"));
  const std::string routed_key = exec::canonical_config(config);
  EXPECT_NE(routed_key.find("topology=torus:8x8x4:hop_us=1"),
            std::string::npos);
  EXPECT_NE(flat_key, routed_key);
}

}  // namespace
}  // namespace gearsim::net
