// Unit tests for the communication-pattern library: message counts,
// volumes, and deadlock-freedom of each building block.
#include <gtest/gtest.h>

#include "cluster/experiment.hpp"
#include "workloads/patterns.hpp"

namespace gearsim::workloads {
namespace {

/// Minimal workload wrapper running one pattern once per rank.
class OnePattern final : public cluster::Workload {
 public:
  using Fn = void (*)(cluster::RankContext&);
  OnePattern(std::string name, Fn fn, bool square_only = false)
      : name_(std::move(name)), fn_(fn), square_only_(square_only) {}
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] bool supports(int n) const override {
    if (!square_only_) return n >= 1;
    int r = 1;
    while (r * r < n) ++r;
    return r * r == n;
  }
  void run(cluster::RankContext& ctx) const override { fn_(ctx); }

 private:
  std::string name_;
  Fn fn_;
  bool square_only_;
};

cluster::RunResult run_pattern(const cluster::Workload& w, int nodes) {
  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  return runner.run(w, nodes, 0);
}

TEST(Patterns, RingHaloMessageCount) {
  const OnePattern w("ring", [](cluster::RankContext& ctx) {
    ring_halo_exchange(ctx, kilobytes(10));
  });
  for (int n : {2, 3, 5, 8}) {
    const auto r = run_pattern(w, n);
    // Two sendrecvs per rank = 2n messages of 10KB.
    EXPECT_EQ(r.messages, static_cast<std::uint64_t>(2 * n)) << n;
    EXPECT_EQ(r.net_bytes, static_cast<Bytes>(2 * n) * kilobytes(10)) << n;
  }
}

TEST(Patterns, RingHaloIsNoopOnOneRank) {
  const OnePattern w("ring", [](cluster::RankContext& ctx) {
    ring_halo_exchange(ctx, kilobytes(10));
  });
  EXPECT_EQ(run_pattern(w, 1).messages, 0u);
}

TEST(Patterns, ChainHaloHasOpenEnds) {
  const OnePattern w("chain", [](cluster::RankContext& ctx) {
    chain_halo_exchange(ctx, kilobytes(10));
  });
  for (int n : {2, 4, 7}) {
    const auto r = run_pattern(w, n);
    // Each of the n-1 adjacencies carries one message each way.
    EXPECT_EQ(r.messages, static_cast<std::uint64_t>(2 * (n - 1))) << n;
  }
}

TEST(Patterns, AdiSweepCountsAndGridRequirement) {
  const OnePattern w(
      "adi",
      [](cluster::RankContext& ctx) { adi_sweep(ctx, kilobytes(90)); },
      /*square_only=*/true);
  for (int n : {4, 9}) {
    const auto r = run_pattern(w, n);
    int q = 1;
    while (q * q < n) ++q;
    // 3 directions x (q-1) steps x 1 sendrecv per rank.
    EXPECT_EQ(r.messages, static_cast<std::uint64_t>(n * 3 * (q - 1))) << n;
    // Faces are face_bytes / q.
    EXPECT_EQ(r.net_bytes, static_cast<Bytes>(n * 3 * (q - 1)) *
                               (kilobytes(90) / static_cast<Bytes>(q)))
        << n;
  }
}

TEST(Patterns, WavefrontVolumeIsNodeInvariant) {
  const OnePattern w("wave", [](cluster::RankContext& ctx) {
    wavefront_exchange(ctx, kilobytes(120));
  });
  const auto r4 = run_pattern(w, 4);
  const auto r9 = run_pattern(w, 9);
  // Per-rank volume ~ 4 * scale regardless of n; message count grows.
  EXPECT_NEAR(static_cast<double>(r4.net_bytes) / 4,
              static_cast<double>(r9.net_bytes) / 9, 1.0);
  EXPECT_GT(static_cast<double>(r9.messages) / 9,
            static_cast<double>(r4.messages) / 4);
}

TEST(Patterns, AllCompleteAtEveryGear) {
  // Deadlock-freedom across the gear ladder (timing shifts must not
  // change matching).
  const OnePattern w("combo", [](cluster::RankContext& ctx) {
    ring_halo_exchange(ctx, kilobytes(4));
    chain_halo_exchange(ctx, kilobytes(4));
    wavefront_exchange(ctx, kilobytes(4));
  });
  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  for (std::size_t g = 0; g < runner.num_gears(); ++g) {
    EXPECT_GT(runner.run(w, 4, g).messages, 0u) << g;
  }
}

}  // namespace
}  // namespace gearsim::workloads
