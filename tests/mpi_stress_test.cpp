// Randomized stress tests for the MPI runtime: generate well-formed
// traffic patterns from a seed and verify global invariants — completion
// (no deadlock), message conservation, byte conservation, and agreement
// between eager and rendezvous protocols.
#include <gtest/gtest.h>

#include <atomic>
#include <tuple>

#include "mpi/comm.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "util/random.hpp"

namespace gearsim::mpi {
namespace {

struct Pattern {
  // messages[i][j]: sizes rank i sends to rank j (tag = i).
  std::vector<std::vector<std::vector<Bytes>>> messages;
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t offwire_messages = 0;  ///< Self-sends skip the network.
  std::uint64_t offwire_bytes = 0;
};

Pattern random_pattern(int n, std::uint64_t seed) {
  Rng rng(seed);
  Pattern p;
  p.messages.assign(n, std::vector<std::vector<Bytes>>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const auto count = rng.below(4);  // 0..3 messages per ordered pair.
      for (std::uint64_t k = 0; k < count; ++k) {
        const Bytes bytes = 1 + rng.below(200'000);
        p.messages[i][j].push_back(bytes);
        ++p.total_messages;
        p.total_bytes += bytes;
        if (i == j) {
          ++p.offwire_messages;
          p.offwire_bytes += bytes;
        }
      }
    }
  }
  return p;
}

using StressParam = std::tuple<int, std::uint64_t>;  // (world size, seed).

class MpiStress : public ::testing::TestWithParam<StressParam> {};

TEST_P(MpiStress, RandomTrafficCompletesAndConserves) {
  const auto [n, seed] = GetParam();
  const Pattern pattern = random_pattern(n, seed);

  sim::Engine engine;
  net::Network network(net::ethernet_100mbps(), n);
  World world(engine, network, n);
  std::atomic<std::uint64_t> received_bytes{0};
  std::atomic<std::uint64_t> received_count{0};

  for (int r = 0; r < n; ++r) {
    sim::Process& proc = engine.spawn(
        "rank" + std::to_string(r), [&, r](sim::Process& p) {
          Comm comm(world, r);
          Rng rng(seed ^ (0xabcdu + r));
          // Post all receives nonblocking (wildcard over senders is
          // exercised via per-source tags), send everything, then drain.
          std::vector<Request> recvs;
          for (int src = 0; src < n; ++src) {
            for (std::size_t k = 0; k < pattern.messages[src][r].size(); ++k) {
              recvs.push_back(comm.irecv(src, src));
            }
          }
          // Interleave sends in a seed-dependent order with jittered
          // pacing, so injection order varies across seeds.
          std::vector<std::pair<Rank, Bytes>> sends;
          for (int dst = 0; dst < n; ++dst) {
            for (Bytes b : pattern.messages[r][dst]) sends.emplace_back(dst, b);
          }
          for (std::size_t i = sends.size(); i > 1; --i) {
            std::swap(sends[i - 1], sends[rng.below(i)]);
          }
          for (const auto& [dst, bytes] : sends) {
            if (rng.uniform() < 0.3) p.delay(microseconds(rng.below(500)));
            comm.send(dst, r, bytes);
          }
          for (auto& req : recvs) {
            const Status s = comm.wait(req);
            received_bytes += s.bytes;
            ++received_count;
          }
          comm.barrier();
        });
    world.bind_rank(r, proc);
  }
  engine.run();  // Deadlock would throw.

  EXPECT_EQ(received_count.load(), pattern.total_messages);
  EXPECT_EQ(received_bytes.load(), pattern.total_bytes);
  // The network carried exactly the off-self traffic plus the barrier's
  // dissemination rounds.
  std::uint64_t barrier_msgs = 0;
  for (int off = 1; off < n; off <<= 1) barrier_msgs += n;
  EXPECT_EQ(network.messages_carried(),
            pattern.total_messages - pattern.offwire_messages + barrier_msgs);
  EXPECT_EQ(network.bytes_carried(),
            pattern.total_bytes - pattern.offwire_bytes);
}

TEST_P(MpiStress, EagerAndRendezvousDeliverTheSameBytes) {
  const auto [n, seed] = GetParam();
  const Pattern pattern = random_pattern(n, seed);
  std::array<std::uint64_t, 2> totals{0, 0};
  for (int variant = 0; variant < 2; ++variant) {
    MpiParams params;
    params.eager_threshold = variant == 0 ? megabytes(64) : Bytes{4096};
    sim::Engine engine;
    net::Network network(net::ethernet_100mbps(), n);
    World world(engine, network, n, params);
    std::atomic<std::uint64_t> bytes{0};
    for (int r = 0; r < n; ++r) {
      sim::Process& proc = engine.spawn(
          "rank" + std::to_string(r), [&, r](sim::Process&) {
            Comm comm(world, r);
            // Receives first (nonblocking) so rendezvous sends can match.
            std::vector<Request> recvs;
            for (int src = 0; src < n; ++src) {
              for (std::size_t k = 0; k < pattern.messages[src][r].size();
                   ++k) {
                recvs.push_back(comm.irecv(src, src));
              }
            }
            for (int dst = 0; dst < n; ++dst) {
              for (Bytes b : pattern.messages[r][dst]) comm.send(dst, r, b);
            }
            for (auto& req : recvs) bytes += comm.wait(req).bytes;
          });
      world.bind_rank(r, proc);
    }
    engine.run();
    totals[variant] = bytes.load();
  }
  EXPECT_EQ(totals[0], totals[1]);
  EXPECT_EQ(totals[0], pattern.total_bytes);
}

std::string stress_name(const ::testing::TestParamInfo<StressParam>& info) {
  return "n" + std::to_string(std::get<0>(info.param)) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, MpiStress,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),
                       ::testing::Values(1u, 42u, 1234u)),
    stress_name);

}  // namespace
}  // namespace gearsim::mpi
