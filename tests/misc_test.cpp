// Coverage for the small corners: logging, call-type names, engine
// run_until with processes, meter edge cases, scheduler helpers, world
// context allocation.
#include <gtest/gtest.h>

#include <sstream>

#include "mpi/types.hpp"
#include "power/energy_meter.hpp"
#include "sched/profile.hpp"
#include "sim/engine.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace gearsim {
namespace {

// --- logging --------------------------------------------------------------------

TEST(Log, LevelParsing) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kWarn);
}

TEST(Log, ThresholdFilters) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Macro body must not evaluate the stream below the threshold.
  int evaluations = 0;
  const auto count = [&evaluations] {
    ++evaluations;
    return "x";
  };
  GEARSIM_DEBUG(count());
  EXPECT_EQ(evaluations, 0);
  set_log_level(original);
}

// --- call-type names ---------------------------------------------------------------

TEST(CallTypes, EveryTypeHasANameAndBlockingClass) {
  using mpi::CallType;
  for (CallType t : {CallType::kSend, CallType::kRecv, CallType::kIsend,
                     CallType::kIrecv, CallType::kWait, CallType::kWaitall,
                     CallType::kSendrecv, CallType::kBarrier, CallType::kBcast,
                     CallType::kReduce, CallType::kAllreduce,
                     CallType::kAlltoall, CallType::kAllgather,
                     CallType::kGather, CallType::kScatter,
                     CallType::kReduceScatter, CallType::kScan,
                     CallType::kCommSplit}) {
    EXPECT_STRNE(mpi::to_string(t), "?");
  }
  EXPECT_FALSE(mpi::is_blocking_point(mpi::CallType::kSend));
  EXPECT_FALSE(mpi::is_blocking_point(mpi::CallType::kIsend));
  EXPECT_FALSE(mpi::is_blocking_point(mpi::CallType::kIrecv));
  EXPECT_TRUE(mpi::is_blocking_point(mpi::CallType::kScan));
}

// --- engine run_until with processes -------------------------------------------------

TEST(Engine, RunUntilPausesAndResumesAProcess) {
  sim::Engine engine;
  std::vector<double> marks;
  engine.spawn("p", [&](sim::Process& p) {
    marks.push_back(p.now().value());
    p.delay(seconds(10.0));
    marks.push_back(p.now().value());
  });
  engine.run_until(seconds(5.0));
  EXPECT_EQ(marks.size(), 1u);  // Started, not yet woken.
  engine.run();                 // Drain the rest.
  ASSERT_EQ(marks.size(), 2u);
  EXPECT_DOUBLE_EQ(marks[1], 10.0);
}

TEST(Engine, RunUntilAdvancesClockOnEmptyQueue) {
  sim::Engine engine;
  engine.run_until(seconds(3.0));
  EXPECT_DOUBLE_EQ(engine.now().value(), 3.0);
}

// --- meter edge cases -----------------------------------------------------------------

TEST(EnergyMeter, MeanPowersThrowWithoutTimeInState) {
  power::EnergyMeter meter(1);
  meter.set_power(0, seconds(0.0), watts(50.0), power::NodeState::kActive);
  meter.finish(seconds(1.0));
  EXPECT_DOUBLE_EQ(meter.node(0).mean_active_power().value(), 50.0);
  EXPECT_THROW((void)meter.node(0).mean_idle_power(), ContractError);
}

TEST(EnergyMeter, UntouchedNodeContributesNothing) {
  power::EnergyMeter meter(2);
  meter.set_power(0, seconds(0.0), watts(10.0), power::NodeState::kIdle);
  meter.finish(seconds(2.0));
  EXPECT_DOUBLE_EQ(meter.node(1).total.value(), 0.0);
  EXPECT_DOUBLE_EQ(meter.total_energy().value(), 20.0);
}

// --- table/formatting corners ----------------------------------------------------------

TEST(TextTable, PrintWritesToStream) {
  TextTable t({"a"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("| a |"), std::string::npos);
}

TEST(TextTable, RuleSeparatesSections) {
  TextTable t({"x"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string s = t.to_string();
  // Header rule + top + bottom + the explicit one = 4 horizontal rules.
  std::size_t rules = 0;
  for (std::size_t pos = s.find("+--"); pos != std::string::npos;
       pos = s.find("+--", pos + 1)) {
    ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

// --- scheduler helpers ------------------------------------------------------------------

TEST(SchedHelpers, ObjectiveNames) {
  using O = sched::WorkloadProfile::Objective;
  EXPECT_EQ(sched::to_string(O::kMinTime), "min-time");
  EXPECT_EQ(sched::to_string(O::kMinEnergy), "min-energy");
  EXPECT_EQ(sched::to_string(O::kMinEdp), "min-EDP");
}

TEST(SchedHelpers, ConfigPointDerivedQuantities) {
  const sched::ConfigPoint p{4, 1, 2, seconds(10.0), joules(2000.0)};
  EXPECT_DOUBLE_EQ(p.mean_power().value(), 200.0);
  EXPECT_DOUBLE_EQ(p.edp(), 20000.0);
}

// --- scaling-shape names -------------------------------------------------------------------

TEST(Shapes, Names) {
  EXPECT_EQ(to_string(ScalingShape::kConstant), "constant");
  EXPECT_EQ(to_string(ScalingShape::kLogarithmic), "logarithmic");
  EXPECT_EQ(to_string(ScalingShape::kLinear), "linear");
  EXPECT_EQ(to_string(ScalingShape::kQuadratic), "quadratic");
}

}  // namespace
}  // namespace gearsim
